"""The trace-event schema and its validator.

:data:`TRACE_EVENT_SCHEMA` is a JSON-Schema (draft-07 subset) document
describing every event a :class:`repro.obs.trace.Tracer` may emit; it is
both documentation (rendered in ``docs/OBSERVABILITY.md``) and the
contract the golden-trace tests and the CI trace-validation job enforce.

The validator is hand-rolled against exactly the subset of JSON Schema
the document uses (``type``, ``enum``, ``required``, ``properties``,
``minimum``, ``oneOf`` dispatched on ``type``), so trace validation works
in environments without the ``jsonschema`` package — CI, workers, user
machines alike.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Tuple

__all__ = ["TRACE_EVENT_SCHEMA", "validate_event", "validate_events"]

#: Categories a span/instant may carry — the hierarchy levels of the
#: trace (flow → pair → obligation → stage) plus supporting kinds.
EVENT_CATEGORIES = (
    "flow",        # a whole harness/verify run, or one flow row
    "pair",        # one circuit-pair equivalence check (cec.check)
    "phase",       # an engine phase (build/simulate/cache/partition/sweep/outputs)
    "obligation",  # one output-pair proof obligation
    "stage",       # one cascade stage attempt (sim/bdd/sat)
    "worker",      # sweep worker-side spans (one per work unit)
    "solver",      # solver-level events
    "event",       # generic instants (requeues, budget exhaustion, ...)
)

TRACE_EVENT_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro trace event",
    "type": "object",
    "required": ["type", "name", "ts"],
    "properties": {
        "type": {"enum": ["meta", "span", "instant", "metrics"]},
        "name": {"type": "string"},
        "ts": {"type": "number", "minimum": 0},
        "cat": {"enum": list(EVENT_CATEGORIES)},
        "dur": {"type": "number", "minimum": 0},
        "id": {"type": "integer", "minimum": 1},
        "parent": {"type": ["integer", "null"]},
        "schema": {"type": "integer", "minimum": 1},
        "args": {"type": "object"},
        # Provenance stamps: which process emitted the event.  Optional
        # so pre-stamp traces still validate; adopted remote-worker
        # events keep their origin's values.
        "host": {"type": "string"},
        "pid": {"type": "integer", "minimum": 0},
    },
    "oneOf": [
        {
            "description": "meta: schema version announcement",
            "properties": {"type": {"enum": ["meta"]}},
            "required": ["schema"],
        },
        {
            "description": "span: a closed interval with hierarchy",
            "properties": {"type": {"enum": ["span"]}},
            "required": ["cat", "dur", "id", "args"],
        },
        {
            "description": "instant: a point event",
            "properties": {"type": {"enum": ["instant"]}},
            "required": ["cat", "args"],
        },
        {
            "description": "metrics: a flattened registry snapshot",
            "properties": {"type": {"enum": ["metrics"]}},
            "required": ["args"],
        },
    ],
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "null": lambda v: v is None,
}


def _check_type(value: Any, expected: Any) -> bool:
    names = expected if isinstance(expected, list) else [expected]
    return any(_TYPE_CHECKS[name](value) for name in names)


def _validate_against(
    event: Mapping[str, Any], schema: Mapping[str, Any], where: str
) -> List[str]:
    errors: List[str] = []
    for key in schema.get("required", ()):
        if key not in event:
            errors.append(f"{where}: missing required field {key!r}")
    for key, rule in schema.get("properties", {}).items():
        if key not in event:
            continue
        value = event[key]
        if "enum" in rule and value not in rule["enum"]:
            errors.append(
                f"{where}: field {key!r} value {value!r} not in {rule['enum']}"
            )
        if "type" in rule and not _check_type(value, rule["type"]):
            errors.append(
                f"{where}: field {key!r} has type "
                f"{type(value).__name__}, expected {rule['type']}"
            )
        if (
            "minimum" in rule
            and isinstance(value, (int, float))
            and not isinstance(value, bool)
            and value < rule["minimum"]
        ):
            errors.append(
                f"{where}: field {key!r} value {value} below minimum "
                f"{rule['minimum']}"
            )
    return errors


def validate_event(event: Any, index: int = 0) -> List[str]:
    """Validate one event against :data:`TRACE_EVENT_SCHEMA`.

    Returns a list of human-readable violations (empty = valid).
    """
    where = f"event[{index}]"
    if not isinstance(event, dict):
        return [f"{where}: not a JSON object"]
    errors = _validate_against(event, TRACE_EVENT_SCHEMA, where)
    kind = event.get("type")
    if kind in ("meta", "span", "instant", "metrics"):
        for branch in TRACE_EVENT_SCHEMA["oneOf"]:
            if kind in branch["properties"]["type"]["enum"]:
                errors.extend(_validate_against(event, branch, where))
    return errors


def validate_events(events: Iterable[Any]) -> List[str]:
    """Validate a whole trace; also checks cross-event invariants.

    Beyond per-event shape: the first event must be the ``meta`` schema
    announcement, span/instant parents must reference a previously-seen
    span id, and span ids must be unique.
    """
    events = list(events)
    errors: List[str] = []
    seen_ids: set = set()
    first = True
    for index, event in enumerate(events):
        errors.extend(validate_event(event, index))
        if not isinstance(event, dict):
            first = False
            continue
        if first:
            if event.get("type") != "meta":
                errors.append("event[0]: trace must start with a meta event")
            first = False
        parent = event.get("parent")
        if isinstance(parent, int) and parent not in seen_ids:
            # Spans are emitted on close (children before parents), so a
            # parent id may legitimately appear later; only flag ids that
            # never appear at all — collect and check afterwards.
            pass
        span_id = event.get("id")
        if isinstance(span_id, int):
            if span_id in seen_ids:
                errors.append(f"event[{index}]: duplicate span id {span_id}")
            seen_ids.add(span_id)
    # Orphan check: every referenced parent must exist somewhere.
    return errors + _orphan_errors(events, seen_ids)


def _orphan_errors(events: Iterable[Any], seen_ids: set) -> List[str]:
    errors: List[str] = []
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            continue
        parent = event.get("parent")
        if isinstance(parent, int) and parent not in seen_ids:
            errors.append(
                f"event[{index}]: parent {parent} references no span in trace"
            )
    return errors
