"""Fleet telemetry: periodic service snapshots and metric-delta streaming.

Three pieces, all consumed by the batch service (``repro batch``,
``repro serve``) and its front ends (``repro status``, the Prometheus
endpoint):

* :class:`TelemetrySampler` — samples a *probe* (a callable returning the
  service's current state as nested ``{section: {key: number}}`` dicts)
  into schema-validated snapshot records.  With a ``path`` it runs a
  periodic asyncio task writing a JSONL time-series; without one it
  samples on demand (the ``repro status`` / Prometheus paths), so a
  server always has a current snapshot even when nothing is recorded.
* :class:`MetricsDeltaFold` — the coordinator side of worker→coordinator
  metrics streaming.  Remote workers ship *incremental* registry deltas
  (each metric counted at most once across all deltas) tagged with a
  per-worker sequence number; the fold applies each ``(source, seq)``
  pair exactly once, so re-sent or stale deltas (lease retries, late
  results from presumed-dead workers) never double-count, and
  out-of-order application converges to the same totals because
  :meth:`~repro.obs.metrics.MetricsRegistry.merge` is commutative and
  associative for counters, gauges and histograms.
* :func:`render_prometheus` / :func:`render_snapshot` — the two read
  surfaces: Prometheus text exposition (``--prom-port``) and the human
  console dashboard (``repro status``).

The snapshot schema is :data:`TELEMETRY_SNAPSHOT_SCHEMA`, validated by
:func:`validate_snapshot` with the same hand-rolled draft-07 subset the
trace schema uses — no ``jsonschema`` dependency anywhere.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import socket
import time
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Union,
)

from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import _validate_against

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "TELEMETRY_SNAPSHOT_SCHEMA",
    "TelemetrySampler",
    "MetricsDeltaFold",
    "validate_snapshot",
    "validate_snapshots",
    "read_snapshots",
    "render_prometheus",
    "render_snapshot",
]

#: Bumped on any incompatible change to the snapshot shape.
SNAPSHOT_SCHEMA_VERSION = 1

#: Sections a snapshot may carry; every leaf inside one must be numeric.
SNAPSHOT_SECTIONS = (
    "queue",      # depth / running / unfinished / closed (0|1)
    "leases",     # live / troubled / expired / requeued / poisoned
    "workers",    # connected remote workers / donated lanes
    "jobs",       # terminal-state counters + emitted results
    "throughput", # jobs_per_sec over the sampling interval
    "cache",      # proof-cache hits / misses
    "chaos",      # injected faults fired
    "store",      # result-store health counters
)

TELEMETRY_SNAPSHOT_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro telemetry snapshot",
    "type": "object",
    "required": ["type", "schema", "seq", "ts", "source", "host", "pid"],
    "properties": {
        "type": {"enum": ["snapshot"]},
        "schema": {"type": "integer", "minimum": 1},
        "seq": {"type": "integer", "minimum": 1},
        "ts": {"type": "number", "minimum": 0},
        "source": {"type": "string"},
        "host": {"type": "string"},
        "pid": {"type": "integer", "minimum": 0},
        **{section: {"type": "object"} for section in SNAPSHOT_SECTIONS},
    },
}


def validate_snapshot(snapshot: Any, index: int = 0) -> List[str]:
    """Validate one snapshot record; returns violations (empty = valid)."""
    where = f"snapshot[{index}]"
    if not isinstance(snapshot, dict):
        return [f"{where}: not a JSON object"]
    errors = _validate_against(snapshot, TELEMETRY_SNAPSHOT_SCHEMA, where)
    for section in SNAPSHOT_SECTIONS:
        body = snapshot.get(section)
        if body is None or not isinstance(body, dict):
            continue
        for key, value in body.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(
                    f"{where}: {section}.{key} is "
                    f"{type(value).__name__}, expected a number"
                )
    return errors


def validate_snapshots(snapshots: Iterable[Any]) -> List[str]:
    """Validate a snapshot stream; also checks per-source seq monotonicity."""
    errors: List[str] = []
    last_seq: Dict[tuple, int] = {}
    for index, snapshot in enumerate(snapshots):
        errors.extend(validate_snapshot(snapshot, index))
        if not isinstance(snapshot, dict):
            continue
        seq = snapshot.get("seq")
        key = (
            snapshot.get("host"),
            snapshot.get("pid"),
            snapshot.get("source"),
        )
        if isinstance(seq, int):
            prev = last_seq.get(key)
            if prev is not None and seq <= prev:
                errors.append(
                    f"snapshot[{index}]: seq {seq} not above previous "
                    f"{prev} for source {key}"
                )
            last_seq[key] = seq
    return errors


def read_snapshots(path: Union[str, os.PathLike]) -> List[Dict[str, Any]]:
    """Load a snapshot JSONL stream, skipping unparseable (torn) lines."""
    snapshots: List[Dict[str, Any]] = []
    with open(os.fspath(path), "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                snapshots.append(record)
    return snapshots


class TelemetrySampler:
    """Samples a probe into snapshot records; optionally on a period.

    ``probe`` returns the instantaneous service state as
    ``{section: {key: number}}``; the sampler stamps identity
    (``host``/``pid``/``source``), a per-sampler ``seq``, the monotonic
    ``ts``, and derives ``throughput.jobs_per_sec`` from the change in
    terminal job counts since the previous sample.  ``sink`` may be a
    list (tests) or a writable stream; ``path`` opens a JSONL file.
    :meth:`start` / :meth:`aclose` run the periodic loop when a file or
    sink is configured; :meth:`sample` works with or without one.
    """

    def __init__(
        self,
        probe: Optional[Callable[[], Mapping[str, Any]]] = None,
        path: Union[None, str, os.PathLike] = None,
        sink: Union[None, List[Dict[str, Any]], IO[str]] = None,
        interval: float = 1.0,
        source: str = "service",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if path is not None and sink is not None:
            raise ValueError("pass either path or sink, not both")
        self.probe = probe
        self.interval = max(0.05, float(interval))
        self.source = str(source)
        self.clock = clock
        self.host = socket.gethostname()
        self.pid = os.getpid()
        self._epoch = clock()
        self._seq = 0
        self._last: Optional[Dict[str, Any]] = None
        self._prev_jobs: Optional[float] = None
        self._prev_ts: Optional[float] = None
        self._owns_stream = False
        self._stream: Optional[IO[str]] = None
        self._buffer: Optional[List[Dict[str, Any]]] = None
        if path is not None:
            self._stream = open(os.fspath(path), "w", encoding="utf-8")
            self._owns_stream = True
        elif isinstance(sink, list):
            self._buffer = sink
        elif sink is not None:
            self._stream = sink
        self._task: Optional[asyncio.Task] = None
        self._stop: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    @property
    def last(self) -> Optional[Dict[str, Any]]:
        """The most recent snapshot, or None before the first sample."""
        return self._last

    @property
    def recording(self) -> bool:
        """True when snapshots are being written somewhere."""
        return self._stream is not None or self._buffer is not None

    def sample(self) -> Dict[str, Any]:
        """Take one snapshot now: probe, stamp, derive throughput, emit."""
        body: Dict[str, Any] = {}
        if self.probe is not None:
            body = {
                section: dict(values)
                for section, values in dict(self.probe() or {}).items()
            }
        now = self.clock()
        ts = max(0.0, now - self._epoch)
        self._seq += 1
        snapshot: Dict[str, Any] = {
            "type": "snapshot",
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "seq": self._seq,
            "ts": round(ts, 6),
            "source": self.source,
            "host": self.host,
            "pid": self.pid,
        }
        snapshot.update(body)
        jobs = snapshot.get("jobs") or {}
        settled = float(jobs.get("done", 0)) + float(jobs.get("failed", 0))
        window = ts - self._prev_ts if self._prev_ts is not None else None
        rate = 0.0
        if window and window > 0 and self._prev_jobs is not None:
            rate = max(0.0, settled - self._prev_jobs) / window
        snapshot["throughput"] = {
            "jobs_per_sec": round(rate, 4),
            "interval_seconds": round(window or 0.0, 6),
        }
        self._prev_jobs = settled
        self._prev_ts = ts
        self._write(snapshot)
        self._last = snapshot
        return snapshot

    def _write(self, snapshot: Dict[str, Any]) -> None:
        if self._buffer is not None:
            self._buffer.append(snapshot)
        elif self._stream is not None:
            try:
                self._stream.write(json.dumps(snapshot) + "\n")
                self._stream.flush()
            except (OSError, ValueError):
                # A full disk (or a closed stream at teardown) degrades
                # recording, never the service it observes.
                pass

    # ------------------------------------------------------------------
    # the periodic loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the periodic sampling task (idempotent; needs a loop)."""
        if self._task is not None or not self.recording:
            return
        self._stop = asyncio.Event()
        self._task = asyncio.ensure_future(self._run())

    async def _run(self) -> None:
        while True:
            self.sample()
            try:
                await asyncio.wait_for(self._stop.wait(), self.interval)
                return
            except asyncio.TimeoutError:
                continue

    async def aclose(self) -> None:
        """Stop the loop, take one final snapshot, close an owned file."""
        if self._task is not None:
            self._stop.set()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if self.probe is not None and self.recording:
            # The final state always lands in the stream, so even a run
            # shorter than one interval records a usable time-series.
            self.sample()
        self.close()

    def close(self) -> None:
        """Synchronous teardown of an owned file (loop-free callers)."""
        if self._stream is not None and self._owns_stream:
            self._stream.close()
            self._stream = None


class MetricsDeltaFold:
    """Exactly-once application of streamed worker metric deltas.

    Each worker tags its deltas with a monotonically increasing ``seq``;
    the fold merges every ``(source, seq)`` pair into the target registry
    at most once.  Idempotency is therefore a property of the fold (a
    re-sent delta is a no-op), while order-independence is a property of
    the registry's merge semantics — both are load-bearing because the
    streaming path re-delivers partials on lease retry and TCP readers
    interleave workers arbitrarily.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._seen: Dict[str, Set[int]] = {}
        self.applied = 0
        self.skipped = 0

    def apply(
        self, source: str, seq: Any, delta: Optional[Mapping[str, Any]]
    ) -> bool:
        """Merge one delta; False when it was a duplicate or unusable."""
        try:
            seq = int(seq)
        except (TypeError, ValueError):
            self.skipped += 1
            return False
        if not isinstance(delta, Mapping) or not delta:
            self.skipped += 1
            return False
        seen = self._seen.setdefault(str(source), set())
        if seq in seen:
            self.skipped += 1
            return False
        seen.add(seq)
        try:
            self.registry.merge(delta)
        except (AttributeError, TypeError, ValueError):
            # A malformed delta from a hostile/buggy worker never poisons
            # the coordinator registry; the seq stays consumed.
            self.skipped += 1
            return False
        self.applied += 1
        return True

    def sources(self) -> List[str]:
        """Every source that has had at least one delta applied."""
        return sorted(self._seen)


# ----------------------------------------------------------------------
# read surfaces: Prometheus exposition and the console dashboard
# ----------------------------------------------------------------------
_PROM_BAD = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, prefix: str = "repro_") -> str:
    name = _PROM_BAD.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return prefix + name


def render_prometheus(
    metrics: Optional[MetricsRegistry] = None,
    snapshot: Optional[Mapping[str, Any]] = None,
    prefix: str = "repro_",
) -> str:
    """Render registry + snapshot as Prometheus text exposition (0.0.4).

    Counters and gauges keep their dotted names with dots mapped to
    underscores; histograms render as classic cumulative-bucket
    histograms; series render as ``_count``/``_sum`` gauges.  Snapshot
    sections land under ``<prefix>telemetry_<section>_<key>``.
    """
    lines: List[str] = []

    def emit(name: str, kind: str, value: float) -> None:
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name} {float(value):g}")

    if metrics is not None:
        data = metrics.to_dict()
        for name in sorted(data["counters"]):
            emit(_prom_name(name, prefix), "counter", data["counters"][name])
        for name in sorted(data["gauges"]):
            emit(_prom_name(name, prefix), "gauge", data["gauges"][name])
        for name in sorted(data["histograms"]):
            hist = data["histograms"][name]
            prom = _prom_name(name, prefix)
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bound, count in zip(hist["bounds"], hist["counts"]):
                cumulative += int(count)
                lines.append(f'{prom}_bucket{{le="{bound:g}"}} {cumulative}')
            lines.append(f'{prom}_bucket{{le="+Inf"}} {int(hist["count"])}')
            lines.append(f"{prom}_sum {float(hist['sum']):g}")
            lines.append(f"{prom}_count {int(hist['count'])}")
        for name in sorted(data["series"]):
            values = data["series"][name]
            prom = _prom_name(name, prefix)
            emit(prom + "_count", "gauge", len(values))
            emit(prom + "_sum", "gauge", sum(values))
    if snapshot is not None:
        for section in SNAPSHOT_SECTIONS:
            body = snapshot.get(section)
            if not isinstance(body, Mapping):
                continue
            for key in sorted(body):
                value = body[key]
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                emit(
                    _prom_name(f"telemetry.{section}.{key}", prefix),
                    "gauge",
                    value,
                )
        seq = snapshot.get("seq")
        if isinstance(seq, (int, float)):
            emit(_prom_name("telemetry.seq", prefix), "counter", seq)
    return "\n".join(lines) + "\n"


def render_snapshot(snapshot: Mapping[str, Any]) -> str:
    """One human-readable dashboard block for ``repro status``."""

    def section(name: str) -> Dict[str, Any]:
        body = snapshot.get(name)
        return dict(body) if isinstance(body, Mapping) else {}

    def fmt(value: Any) -> str:
        number = float(value)
        return f"{int(number)}" if number == int(number) else f"{number:.2f}"

    queue = section("queue")
    leases = section("leases")
    workers = section("workers")
    jobs = section("jobs")
    cache = section("cache")
    chaos = section("chaos")
    throughput = section("throughput")
    lines = [
        f"repro fleet [{snapshot.get('source', '?')}] "
        f"{snapshot.get('host', '?')} pid={snapshot.get('pid', '?')}  "
        f"seq={snapshot.get('seq', '?')}  t=+{snapshot.get('ts', 0):.1f}s"
    ]

    def row(label: str, body: Dict[str, Any], order: List[str]) -> None:
        if not body:
            return
        keys = [k for k in order if k in body]
        keys += [k for k in sorted(body) if k not in order]
        lines.append(
            f"  {label:<10s} "
            + "  ".join(f"{k}={fmt(body[k])}" for k in keys)
        )

    row("queue", queue, ["depth", "running", "unfinished", "closed"])
    row("leases", leases, ["live", "troubled", "expired", "requeued", "poisoned"])
    row("workers", workers, ["connected", "lanes"])
    row("jobs", jobs, ["done", "failed", "resumed", "deduped", "quarantined", "cancelled", "emitted"])
    hits = float(cache.get("hits", 0))
    misses = float(cache.get("misses", 0))
    if hits or misses:
        rate = 100.0 * hits / (hits + misses)
        lines.append(
            f"  {'cache':<10s} hits={fmt(hits)}  misses={fmt(misses)}  "
            f"hit_rate={rate:.1f}%"
        )
    rate = throughput.get("jobs_per_sec")
    if rate is not None:
        lines.append(
            f"  {'rate':<10s} {float(rate):.2f} jobs/s "
            f"(over {float(throughput.get('interval_seconds', 0)):.1f}s)"
        )
    if chaos.get("faults_fired"):
        lines.append(f"  {'chaos':<10s} faults_fired={fmt(chaos['faults_fired'])}")
    return "\n".join(lines)
