"""Vectorised bit-parallel AIG simulation over numpy ``uint64`` lanes.

The scalar :meth:`repro.aig.AIG.simulate` walks nodes one at a time and
carries each node's pattern word as a Python big int — fine for a single
64-bit round, but the sweep engine evaluates whole pattern corpora
(multi-round signatures, refinement columns), where per-node interpreter
overhead dominates.  This module evaluates the AIG level by level on a
``(num_nodes, n_lanes)`` ``uint64`` array instead: one fancy-indexed
gather + XOR (complement) + AND per level, amortising the Python
overhead across every node of the level and every 64-pattern lane.

The kernel is an exact drop-in: pattern ``i`` is bit ``i`` of each
node's word, and the returned per-node words are bit-identical to the
scalar path (the scalar ``simulate`` stays in :mod:`repro.aig.aig` as
the differential-test oracle).  The schedule — a levelised topological
order plus fanin/complement arrays — is computed once per AIG and
cached; the AIG invalidates it on any mutation.

``numpy`` is optional: :data:`HAVE_NUMPY` is False when the import
fails and callers (the AIG dispatch) fall back to the scalar path.
The dispatch (:func:`worthwhile`) routes only large single-lane corpora
here — for multi-lane corpora the scalar path's big-int ops already
amortise the interpreter overhead across every lane at once, and the
kernel's per-node conversion back to Python ints stops paying off.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

HAVE_NUMPY = _np is not None

__all__ = ["HAVE_NUMPY", "SimSchedule", "build_schedule", "evaluate"]

#: Below this many node-lanes the scalar path wins: the kernel's fixed
#: per-call cost (array allocation, per-level dispatch) is only paid back
#: once there is real bulk work to vectorise.
MIN_NODE_LANES = 4096

#: Above this many ``uint64`` lanes the scalar path wins: CPython
#: big-int bitwise ops on wide words run near memory bandwidth, while
#: the kernel pays a per-node ``int.from_bytes`` conversion on the way
#: out that grows with the lane count.  Measured on random 10k-50k-AND
#: AIGs: the kernel is ~3x faster at 1 lane and ~0.9x from 2 lanes up.
MAX_KERNEL_LANES = 1


class SimSchedule:
    """Levelised evaluation plan for one AIG snapshot.

    ``levels`` holds one tuple per logic level ``>= 1``:
    ``(nodes, fanin0_nodes, fanin1_nodes, neg0, neg1)`` — all
    ``uint64``/``intp`` numpy arrays, with ``neg*`` being 0 or the
    all-ones word so a complemented fanin is one XOR away.  ``pi_nodes``
    lists the PI node ids in :attr:`AIG.pis` order.
    """

    __slots__ = ("num_nodes", "pi_nodes", "levels")

    def __init__(self, num_nodes: int, pi_nodes, levels) -> None:
        self.num_nodes = num_nodes
        self.pi_nodes = pi_nodes
        self.levels = levels


def build_schedule(
    num_nodes: int,
    pis: Sequence[int],
    is_pi: Sequence[bool],
    fanin0: Sequence[int],
    fanin1: Sequence[int],
) -> SimSchedule:
    """Compute the levelised schedule of an AIG's node arrays.

    Level 0 is the constant node and the PIs; an AND node's level is one
    above its deepest fanin.  Nodes are stored in creation order inside
    each level, which is already topological.
    """
    assert _np is not None
    level = [0] * num_nodes
    per_level: Dict[int, List[int]] = {}
    for node in range(1, num_nodes):
        if is_pi[node]:
            continue
        lv = 1 + max(level[fanin0[node] >> 1], level[fanin1[node] >> 1])
        level[node] = lv
        per_level.setdefault(lv, []).append(node)

    ones = _np.uint64(0xFFFFFFFFFFFFFFFF)
    zero = _np.uint64(0)
    levels = []
    for lv in sorted(per_level):
        nodes = per_level[lv]
        f0 = [fanin0[n] for n in nodes]
        f1 = [fanin1[n] for n in nodes]
        levels.append(
            (
                _np.asarray(nodes, dtype=_np.intp),
                _np.asarray([l >> 1 for l in f0], dtype=_np.intp),
                _np.asarray([l >> 1 for l in f1], dtype=_np.intp),
                _np.asarray([ones if l & 1 else zero for l in f0]),
                _np.asarray([ones if l & 1 else zero for l in f1]),
            )
        )
    return SimSchedule(num_nodes, _np.asarray(list(pis), dtype=_np.intp), levels)


def worthwhile(schedule: SimSchedule, width: int) -> bool:
    """Is this corpus in the regime where the kernel beats the scalar path?

    Two-sided: the corpus must be big enough to amortise the kernel's
    fixed dispatch cost (:data:`MIN_NODE_LANES`) but narrow enough that
    the per-node big-int conversion out of the lane array does not
    dominate (:data:`MAX_KERNEL_LANES`).  Wide corpora are better served
    by the scalar path, whose big-int bitwise ops scale with width at
    near memory bandwidth.
    """
    n_lanes = max(1, (width + 63) // 64)
    if n_lanes > MAX_KERNEL_LANES:
        return False
    return schedule.num_nodes * n_lanes >= MIN_NODE_LANES


def evaluate(
    schedule: SimSchedule, pi_words: Dict[int, int], width: int
) -> List[int]:
    """Evaluate a pattern corpus; returns one Python int word per node.

    ``pi_words`` maps PI *node id* to its pattern word (bit ``i`` =
    pattern ``i``); absent PIs default to 0.  ``width`` is the corpus
    width in patterns.  The result is bit-identical to the scalar
    :meth:`AIG.simulate` under the same mask: every returned word is
    masked to ``width`` bits.
    """
    assert _np is not None
    n_lanes = max(1, (width + 63) // 64)
    lanes = _np.zeros((schedule.num_nodes, n_lanes), dtype=_np.uint64)
    n_bytes = n_lanes * 8
    for node in schedule.pi_nodes.tolist():
        word = pi_words.get(node, 0)
        if word:
            lanes[node] = _np.frombuffer(
                word.to_bytes(n_bytes, "little"), dtype="<u8"
            )
    for nodes, f0, f1, neg0, neg1 in schedule.levels:
        # One gather + complement + AND per level; complements may set
        # bits above ``width``, but AND/XOR are bitwise so the final mask
        # below restores exact scalar-path words.
        lanes[nodes] = (lanes[f0] ^ neg0[:, None]) & (lanes[f1] ^ neg1[:, None])
    mask = (1 << width) - 1
    if n_lanes == 1:
        return [w & mask for w in lanes[:, 0].tolist()]
    raw = _np.ascontiguousarray(lanes, dtype="<u8").tobytes()
    return [
        int.from_bytes(raw[i : i + n_bytes], "little") & mask
        for i in range(0, len(raw), n_bytes)
    ]
