"""And-Inverter Graphs.

Literal encoding: node ``n`` has literals ``2n`` (positive) and ``2n + 1``
(complemented).  Node 0 is the constant-FALSE node, so literal 0 is FALSE
and literal 1 is TRUE.  AND nodes store two child literals; structural
hashing plus the usual one-level simplifications (``x·x = x``, ``x·x̄ = 0``,
``x·1 = x``, ``x·0 = 0``) keep the graph reduced, which is what makes
retimed-and-resynthesised circuit pairs collapse substantially before any
SAT effort (the "structural" filter of the CEC engines the paper cites).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.netlist.circuit import Circuit

__all__ = ["AIG", "aig_from_circuit", "aig_to_circuit"]

FALSE_LIT = 0
TRUE_LIT = 1


class AIG:
    """A structurally hashed and-inverter graph."""

    def __init__(self) -> None:
        # Node arrays; node 0 is constant FALSE.
        self._fanin0: List[int] = [0]
        self._fanin1: List[int] = [0]
        self._is_pi: List[bool] = [False]
        self._strash: Dict[Tuple[int, int], int] = {}
        self.pis: List[int] = []  # node ids
        self.pi_names: List[str] = []
        self._pi_index: Dict[str, int] = {}
        self.outputs: List[Tuple[str, int]] = []  # (name, literal)
        # Cached levelised simulation schedule (repro.aig.simkernel);
        # invalidated whenever a node is added.
        self._schedule = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_pi(self, name: str) -> int:
        """Add (or fetch) a primary input; returns its positive literal."""
        if name in self._pi_index:
            return 2 * self._pi_index[name]
        node = len(self._fanin0)
        self._fanin0.append(0)
        self._fanin1.append(0)
        self._is_pi.append(True)
        self._schedule = None
        self.pis.append(node)
        self.pi_names.append(name)
        self._pi_index[name] = node
        return 2 * node

    def add_output(self, name: str, lit: int) -> None:
        """Register a named output literal."""
        self.outputs.append((name, lit))

    def and_(self, a: int, b: int) -> int:
        """Structurally hashed AND of two literals."""
        if a > b:
            a, b = b, a
        if a == FALSE_LIT:
            return FALSE_LIT
        if a == TRUE_LIT:
            return b
        if a == b:
            return a
        if a ^ b == 1:
            return FALSE_LIT
        key = (a, b)
        node = self._strash.get(key)
        if node is None:
            node = len(self._fanin0)
            self._fanin0.append(a)
            self._fanin1.append(b)
            self._is_pi.append(False)
            self._strash[key] = node
            self._schedule = None
        return 2 * node

    def or_(self, a: int, b: int) -> int:
        """Disjunction of two literals (via De Morgan)."""
        return self.and_(a ^ 1, b ^ 1) ^ 1

    def not_(self, a: int) -> int:
        """Complemented literal."""
        return a ^ 1

    def xor(self, a: int, b: int) -> int:
        """Exclusive-or of two literals."""
        return self.or_(self.and_(a, b ^ 1), self.and_(a ^ 1, b))

    def mux(self, sel: int, then_lit: int, else_lit: int) -> int:
        """``sel ? then : else`` over literals."""
        return self.or_(self.and_(sel, then_lit), self.and_(sel ^ 1, else_lit))

    def and_all(self, lits: Iterable[int]) -> int:
        """Balanced AND over many literals."""
        level = [l for l in lits]
        if not level:
            return TRUE_LIT
        while len(level) > 1:
            nxt = [
                self.and_(level[i], level[i + 1])
                for i in range(0, len(level) - 1, 2)
            ]
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def or_all(self, lits: Iterable[int]) -> int:
        """Balanced OR over many literals."""
        return self.and_all(l ^ 1 for l in lits) ^ 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def num_nodes(self) -> int:
        """Total node count (constant + PIs + ANDs)."""
        return len(self._fanin0)

    def num_ands(self) -> int:
        """AND-node count."""
        return self.num_nodes() - 1 - len(self.pis)

    def is_pi_node(self, node: int) -> bool:
        """True when the node is a primary input."""
        return self._is_pi[node]

    def fanins(self, node: int) -> Tuple[int, int]:
        """The two child literals of an AND node."""
        return self._fanin0[node], self._fanin1[node]

    def and_nodes(self) -> Iterable[int]:
        """All AND node ids in topological (creation) order."""
        for node in range(1, self.num_nodes()):
            if not self._is_pi[node]:
                yield node

    def cone_nodes(self, lits: Iterable[int]) -> Set[int]:
        """Transitive-fanin node set (PIs included) of some literals."""
        cone: Set[int] = set()
        stack = [lit >> 1 for lit in lits]
        while stack:
            node = stack.pop()
            if node in cone:
                continue
            cone.add(node)
            if node and not self._is_pi[node]:
                stack.append(self._fanin0[node] >> 1)
                stack.append(self._fanin1[node] >> 1)
        return cone

    def eval_literals(
        self, lits: Sequence[int], pi_values: Dict[str, bool]
    ) -> List[bool]:
        """Evaluate arbitrary literals on one input assignment.

        Inputs absent from ``pi_values`` default to False (an unconstrained
        input on one side of a miter).
        """
        words = self.simulate(
            {name: int(pi_values.get(name, False)) for name in self.pi_names},
            1,
        )
        return [bool(words[lit >> 1] ^ (lit & 1)) for lit in lits]

    def pair_cone_key(self, lit_a: int, lit_b: int) -> str:
        """Canonical structural hash of a candidate pair's fanin cone.

        Nodes are renumbered in deterministic DFS discovery order from the
        pair, so the key depends only on the cone's structure, the
        complementation pattern, and which leaves are shared — not on node
        ids or input names.  Structurally identical pairs from unrelated
        circuits (or unrelated runs) therefore hash equal, which is what
        makes the proof cache reusable across whole flows.
        """
        ids: Dict[int, int] = {}
        parts: List[str] = []
        for root in (lit_a >> 1, lit_b >> 1):
            # Iterative post-order DFS (cones can exceed recursion limits).
            stack: List[Tuple[int, bool]] = [(root, False)]
            while stack:
                node, expanded = stack.pop()
                if node in ids:
                    continue
                if node == 0 or self._is_pi[node]:
                    ids[node] = len(ids)
                    parts.append("c" if node == 0 else "i")
                    continue
                f0, f1 = self._fanin0[node], self._fanin1[node]
                if expanded:
                    ids[node] = len(ids)
                    parts.append(
                        f"a{ids[f0 >> 1]}.{f0 & 1}.{ids[f1 >> 1]}.{f1 & 1}"
                    )
                else:
                    stack.append((node, True))
                    stack.append((f1 >> 1, False))
                    stack.append((f0 >> 1, False))
        parts.append(f"q{ids[lit_a >> 1]}.{lit_a & 1}.{ids[lit_b >> 1]}.{lit_b & 1}")
        return hashlib.sha256("|".join(parts).encode("ascii")).hexdigest()

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def simulate(self, pi_words: Dict[str, int], mask: int) -> List[int]:
        """Bit-parallel simulation; returns a word per node.

        This is the pure-Python scalar path — one big-int word per node,
        evaluated in creation order.  It is kept verbatim as the
        differential-test oracle for the vectorised kernel
        (:mod:`repro.aig.simkernel`), which :meth:`simulate_words` (and
        therefore :meth:`random_simulate` / :meth:`simulate_patterns`)
        dispatches to for large corpora.
        """
        words = [0] * self.num_nodes()
        for node, name in zip(self.pis, self.pi_names):
            words[node] = pi_words[name] & mask

        def lit_word(lit: int) -> int:
            w = words[lit >> 1]
            return (~w & mask) if lit & 1 else w

        for node in range(1, self.num_nodes()):
            if self._is_pi[node]:
                continue
            words[node] = lit_word(self._fanin0[node]) & lit_word(self._fanin1[node])
        return words

    def sim_schedule(self):
        """The cached levelised simulation schedule (None without numpy).

        Built lazily by :mod:`repro.aig.simkernel` and invalidated on
        any mutation (:meth:`add_pi` / :meth:`and_` creating a node).
        """
        from repro.aig import simkernel

        if not simkernel.HAVE_NUMPY:
            return None
        if self._schedule is None:
            self._schedule = simkernel.build_schedule(
                self.num_nodes(),
                self.pis,
                self._is_pi,
                self._fanin0,
                self._fanin1,
            )
        return self._schedule

    def simulate_words(
        self,
        pi_words: Dict[str, int],
        width: int,
        use_kernel: Optional[bool] = None,
    ) -> List[int]:
        """Simulate a ``width``-pattern corpus; returns a word per node.

        Routes through the vectorised numpy kernel when it is available
        and the corpus is big enough to pay for the dispatch
        (``use_kernel=None``); ``use_kernel=True`` / ``False`` force the
        kernel or the scalar oracle (differential tests).  Both paths
        return bit-identical words; PIs absent from ``pi_words`` default
        to 0.
        """
        from repro.aig import simkernel

        if use_kernel is None or use_kernel:
            schedule = self.sim_schedule()
            if schedule is not None and (
                use_kernel or simkernel.worthwhile(schedule, width)
            ):
                lane_mask = (1 << width) - 1
                node_words = {
                    node: pi_words.get(name, 0) & lane_mask
                    for node, name in zip(self.pis, self.pi_names)
                }
                return simkernel.evaluate(schedule, node_words, width)
            if use_kernel:
                raise RuntimeError(
                    "use_kernel=True requires numpy (repro.aig.simkernel)"
                )
        mask = (1 << width) - 1
        return self.simulate(
            {name: pi_words.get(name, 0) for name in self.pi_names}, mask
        )

    def random_simulate(
        self, width: int = 64, seed: int = 0
    ) -> Tuple[List[int], int]:
        """Random-pattern simulation; returns (node words, mask)."""
        rng = random.Random(seed)
        mask = (1 << width) - 1
        pi_words = {name: rng.getrandbits(width) for name in self.pi_names}
        return self.simulate_words(pi_words, width), mask

    def simulate_patterns(
        self, assignments: Sequence[Dict[str, bool]]
    ) -> Tuple[List[int], int]:
        """Bit-parallel simulation of explicit PI assignments.

        Each assignment becomes one bit column (assignment ``i`` is bit
        ``i``); PIs absent from an assignment default to False.  Corpora
        wider than 64 patterns evaluate as multiple ``uint64`` lanes on
        the vectorised kernel.  Returns ``(node words, mask)`` exactly
        like :meth:`random_simulate`, so the columns can be appended to
        existing simulation signatures.
        """
        width = len(assignments)
        mask = (1 << width) - 1
        pi_words = {name: 0 for name in self.pi_names}
        for i, assignment in enumerate(assignments):
            bit = 1 << i
            for name in self.pi_names:
                if assignment.get(name, False):
                    pi_words[name] |= bit
        return self.simulate_words(pi_words, width), mask

    def eval_outputs(self, pi_values: Dict[str, bool]) -> Dict[str, bool]:
        """Evaluate all registered outputs on one assignment."""
        words = self.simulate({n: int(v) for n, v in pi_values.items()}, 1)

        def lit_val(lit: int) -> bool:
            w = words[lit >> 1]
            return bool(w ^ (lit & 1))

        return {name: lit_val(lit) for name, lit in self.outputs}

    # ------------------------------------------------------------------
    # CNF encoding
    # ------------------------------------------------------------------
    def to_cnf(self):
        """Encode all AND nodes; returns (CNF, var_of_node list).

        Node ``n`` gets CNF variable ``n + 1`` (node 0 / constant FALSE gets
        variable 1, constrained to false).
        """
        from repro.sat.cnf import CNF

        cnf = CNF(self.num_nodes())
        cnf.add_clause([-1])  # node 0 is FALSE

        def lit2cnf(lit: int) -> int:
            var = (lit >> 1) + 1
            return -var if lit & 1 else var

        for node in self.and_nodes():
            out = node + 1
            a = lit2cnf(self._fanin0[node])
            b = lit2cnf(self._fanin1[node])
            cnf.add_clause([-out, a])
            cnf.add_clause([-out, b])
            cnf.add_clause([out, -a, -b])
        return cnf, lit2cnf


def aig_to_circuit(aig: AIG, name: str = "from_aig") -> Circuit:
    """Export an AIG as a combinational circuit of AND2/INV gates.

    Inverted output literals get dedicated inverter gates so the circuit's
    output names match the AIG's registered outputs.
    """
    from repro.netlist.cube import Sop

    circuit = Circuit(name)
    for pi_name in aig.pi_names:
        circuit.add_input(pi_name)
    signal_of: Dict[int, str] = {}
    const0: Optional[str] = None

    def const_signal() -> str:
        nonlocal const0
        if const0 is None:
            const0 = circuit.fresh_signal("__aig_const0")
            circuit.add_gate(const0, (), Sop.const0(0))
        return const0

    for node, pi_name in zip(aig.pis, aig.pi_names):
        signal_of[node] = pi_name
    for node in aig.and_nodes():
        f0, f1 = aig.fanins(node)
        sop = Sop(
            2,
            (
                ("1" if not (f0 & 1) else "0")
                + ("1" if not (f1 & 1) else "0"),
            ),
        )
        sig = circuit.fresh_signal(f"__aig_n{node}")
        fanin_sigs = []
        for lit in (f0, f1):
            child = lit >> 1
            fanin_sigs.append(
                const_signal() if child == 0 else signal_of[child]
            )
        circuit.add_gate(sig, tuple(fanin_sigs), sop)
        signal_of[node] = sig

    used_names: Dict[str, int] = {}
    for out_name, lit in aig.outputs:
        node = lit >> 1
        if node == 0:
            base = const_signal()
            value_sig = base
            inverted = bool(lit & 1)
        else:
            value_sig = signal_of[node]
            inverted = bool(lit & 1)
        sop = Sop.and_all(1, [not inverted])
        if circuit.driver_kind(out_name) is None:
            circuit.add_gate(out_name, (value_sig,), sop)
            circuit.add_output(out_name)
        else:
            alias = circuit.fresh_signal(out_name)
            circuit.add_gate(alias, (value_sig,), sop)
            circuit.add_output(alias)
    return circuit


def aig_from_circuit(
    circuit: Circuit, aig: Optional[AIG] = None
) -> Tuple[AIG, Dict[str, int]]:
    """Import a combinational circuit; returns (aig, literal per signal).

    Passing an existing ``aig`` shares PIs (by name) and the structural hash
    table between several circuits — the CEC engine imports both sides of a
    miter into one AIG so identical substructure collapses to identical
    literals.
    """
    if circuit.latches:
        raise ValueError("aig_from_circuit requires a combinational circuit")
    if aig is None:
        aig = AIG()
    lit_of: Dict[str, int] = {}
    for pi in circuit.inputs:
        lit_of[pi] = aig.add_pi(pi)
    for gate in circuit.topo_gates():
        fanin_lits = [lit_of[s] for s in gate.inputs]
        cube_lits = []
        for cube in gate.sop.cubes:
            term_lits = [
                fanin_lits[i] if ch == "1" else fanin_lits[i] ^ 1
                for i, ch in enumerate(cube)
                if ch != "-"
            ]
            cube_lits.append(aig.and_all(term_lits))
        lit_of[gate.output] = aig.or_all(cube_lits) if cube_lits else FALSE_LIT
    for out in circuit.outputs:
        aig.add_output(out, lit_of[out])
    return aig, lit_of
