"""And-Inverter Graph with structural hashing.

* :mod:`repro.aig.aig` — the :class:`AIG` container, circuit import, and
  bit-parallel simulation (scalar oracle + corpus dispatch);
* :mod:`repro.aig.simkernel` — the vectorised numpy simulation kernel
  (levelised schedule, ``uint64`` lane arrays, optional dependency);
* :mod:`repro.aig.rewrite` — pre-sweep preprocessing: constant
  propagation, strash, local two-level rewrites, dead-node elimination.
"""

from repro.aig.aig import AIG, aig_from_circuit, aig_to_circuit
from repro.aig.rewrite import preprocess_miter, rewrite_cone

__all__ = [
    "AIG",
    "aig_from_circuit",
    "aig_to_circuit",
    "preprocess_miter",
    "rewrite_cone",
]
