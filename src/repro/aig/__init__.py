"""And-Inverter Graph with structural hashing.

* :mod:`repro.aig.aig` — the :class:`AIG` container, circuit import, and
  bit-parallel simulation;
"""

from repro.aig.aig import AIG, aig_from_circuit, aig_to_circuit

__all__ = ["AIG", "aig_from_circuit", "aig_to_circuit"]
