"""AIG preprocessing: constant propagation, strash, local rewrites.

The sweep engine's cost scales with the miter's AND-node count, so the
cheapest speedup is to hand it a smaller miter.  :func:`rewrite_cone`
rebuilds the fanin cones of a root-literal set into a fresh AIG,
which simultaneously applies:

* **constant propagation and the one-level rules** (``x·x = x``,
  ``x·x̄ = 0``, constant absorption) — re-running every node through
  :meth:`AIG.and_` re-applies them after children have simplified;
* **structural hashing** — duplicate AND nodes whose fanins collapsed
  to the same literals merge in the fresh strash table;
* **local two-level rewrites** (:func:`and_rewrite`) — containment and
  substitution over one fanin level (``(ab)·a = ab``, ``(ab)·ā = 0``,
  ``a·¬(ab) = a·b̄``), the cheap core of ABC-style rewriting;
* **dead-node elimination** — only the root cones are rebuilt, so
  intermediate nodes orphaned by SOP lowering (or by the rules above)
  vanish.

Everything is driven through a *literal remap* (old literal → new
literal): primary inputs are re-created first, by name and in the same
order, so PI node ids, names, and therefore counterexample / candidate /
pattern extraction stay valid against the original inputs.

:func:`preprocess_miter` applies the pass to a
:class:`repro.cec.miter.MiterAIG` before any sweep; it is what the
engine's ``preprocess=True`` flag (threaded down from
``check_equivalence`` / ``repro.api.VerifyRequest`` / ``--no-preprocess``)
calls.  The rewrites are semantics-preserving, so verdicts with
preprocessing on and off are identical — the bench matrix
(``benchmarks/bench_cec.py``) gates on exactly that.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.aig.aig import AIG, FALSE_LIT

__all__ = ["and_rewrite", "rewrite_cone", "preprocess_miter"]


def and_rewrite(aig: AIG, a: int, b: int) -> int:
    """AND of two literals with one level of look-ahead rewriting.

    On top of :meth:`AIG.and_`'s one-level rules, checks each operand's
    fanins for containment and contradiction:

    * ``(f0·f1)·f0  = f0·f1``   (absorption: the AND implies its fanin)
    * ``(f0·f1)·f̄0 = 0``        (contradiction with a fanin)
    * ``¬(f0·f1)·f̄0 = f̄0``     (the complement is already implied)
    * ``f0·¬(f0·f1) = f0·f̄1``   (substitution: resolve the shared fanin)

    All rules are local equivalences, so the result is semantically the
    AND of ``a`` and ``b`` in every case.
    """
    for x, y in ((a, b), (b, a)):
        node = x >> 1
        if node == 0 or aig.is_pi_node(node):
            continue
        f0, f1 = aig.fanins(node)
        if not x & 1:  # x = f0·f1
            if y == f0 or y == f1:
                return x
            if y == f0 ^ 1 or y == f1 ^ 1:
                return FALSE_LIT
        else:  # x = ¬(f0·f1)
            if y == f0 ^ 1 or y == f1 ^ 1:
                return y
            if y == f0:
                return aig.and_(f0, f1 ^ 1)
            if y == f1:
                return aig.and_(f1, f0 ^ 1)
    return aig.and_(a, b)


def rewrite_cone(
    aig: AIG, roots: Iterable[int]
) -> Tuple[AIG, Dict[int, int]]:
    """Rebuild the fanin cones of ``roots`` into a fresh, reduced AIG.

    Returns ``(new_aig, node_map)`` where ``node_map`` maps every old
    node in the cones (plus the constant and *all* PIs) to its new
    literal; remap an old literal ``l`` as ``node_map[l >> 1] ^ (l & 1)``.
    Every PI of the original AIG is re-created by name in the original
    order — even PIs outside the cones — so pattern and counterexample
    extraction over ``pis`` / ``pi_names`` is unchanged.
    """
    new = AIG()
    node_map: Dict[int, int] = {0: FALSE_LIT}
    for node, name in zip(aig.pis, aig.pi_names):
        node_map[node] = new.add_pi(name)
    cone = aig.cone_nodes(list(roots))
    for node in aig.and_nodes():  # creation order is topological
        if node not in cone:
            continue
        f0, f1 = aig.fanins(node)
        node_map[node] = and_rewrite(
            new,
            node_map[f0 >> 1] ^ (f0 & 1),
            node_map[f1 >> 1] ^ (f1 & 1),
        )
    return new, node_map


def remap_literal(node_map: Dict[int, int], lit: int) -> int:
    """Translate an old literal through a :func:`rewrite_cone` map."""
    return node_map[lit >> 1] ^ (lit & 1)


def preprocess_miter(miter) -> Tuple[object, int]:
    """Shrink a miter's AIG before sweeping; returns (miter, removed).

    Rebuilds the output-pair cones through :func:`rewrite_cone` and
    remaps the pair literals (and any registered outputs / signal maps)
    into the new AIG.  ``removed`` is the AND-node reduction — the
    ``cec.preprocess.nodes_removed`` metric.  The returned miter is a
    new :class:`~repro.cec.miter.MiterAIG`; the input miter is untouched.
    """
    from repro.cec.miter import MiterAIG

    roots: List[int] = []
    for _, l1, l2 in miter.output_pairs:
        roots.append(l1)
        roots.append(l2)
    old = miter.aig
    new_aig, node_map = rewrite_cone(old, roots)
    new_aig.outputs = [
        (name, remap_literal(node_map, lit))
        for name, lit in old.outputs
        if (lit >> 1) in node_map
    ]
    pairs = [
        (name, remap_literal(node_map, l1), remap_literal(node_map, l2))
        for name, l1, l2 in miter.output_pairs
    ]
    lits1 = {
        name: remap_literal(node_map, lit)
        for name, lit in miter.lits1.items()
        if (lit >> 1) in node_map
    }
    lits2 = {
        name: remap_literal(node_map, lit)
        for name, lit in miter.lits2.items()
        if (lit >> 1) in node_map
    }
    removed = old.num_ands() - new_aig.num_ands()
    return MiterAIG(new_aig, pairs, lits1, lits2), removed
