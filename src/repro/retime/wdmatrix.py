"""W/D matrices and OPT1-style exact min-period retiming (Leiserson-Saxe).

The classic exact formulation: for every vertex pair,

* ``W(u,v)`` — the minimum latch count over all u→v paths;
* ``D(u,v)`` — the maximum path delay among the minimum-weight u→v paths.

A clock period φ is achievable iff the difference constraints

* ``r(u) − r(v) ≤ w(e)``                     for every edge, and
* ``r(u) − r(v) ≤ W(u,v) − 1``               whenever ``D(u,v) > φ``

are consistent (checked by Bellman-Ford).  The candidate periods are the
distinct D values (Leiserson-Saxe Theorem 10 / the OPT1 algorithm).

This O(V³) formulation exists alongside the FEAS-based solver in
:mod:`repro.retime.minperiod` as an *independent implementation* — the
property tests cross-check both on random circuits, and small flows may
use either.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.retime.rgraph import HOST, RetimingGraph

__all__ = ["wd_matrices", "exact_min_period", "bellman_ford_feasible"]

_INF = float("inf")


def wd_matrices(
    graph: RetimingGraph,
) -> Tuple[Dict[Tuple[str, str], int], Dict[Tuple[str, str], int]]:
    """All-pairs (W, D) via Floyd-Warshall on the composite weight.

    Uses the standard trick: order path weights lexicographically by
    ``(latches, -delay)`` so the shortest path under that order carries
    W and the associated maximum delay D.  Paths through the host are
    excluded (the environment is not combinational logic).
    """
    vertices = [v for v in graph.vertices]
    # dist[u][v] = (weight, -delay_of_path_excluding_u's_own_delay)
    dist: Dict[str, Dict[str, Tuple[float, float]]] = {
        u: {v: (_INF, 0.0) for v in vertices} for u in vertices
    }
    for e in graph.edges:
        # Delay accumulates head delays along the path; u's own delay is
        # added at the end (D(u,v) = d(u) + Σ d(interior) + d(v)).
        cand = (float(e.weight), -float(graph.delay[e.head]))
        if cand < dist[e.tail][e.head]:
            dist[e.tail][e.head] = cand
    for k in vertices:
        if k == HOST:
            continue  # combinational paths never continue through the host
        dk = dist[k]
        for u in vertices:
            du = dist[u]
            duk = du[k]
            if duk[0] == _INF:
                continue
            for v in vertices:
                kv = dk[v]
                if kv[0] == _INF:
                    continue
                cand = (duk[0] + kv[0], duk[1] + kv[1])
                if cand < du[v]:
                    du[v] = cand
    w_matrix: Dict[Tuple[str, str], int] = {}
    d_matrix: Dict[Tuple[str, str], int] = {}
    for u in vertices:
        for v in vertices:
            weight, neg_delay = dist[u][v]
            if weight == _INF:
                continue
            w_matrix[(u, v)] = int(weight)
            d_matrix[(u, v)] = int(-neg_delay) + graph.delay[u]
    return w_matrix, d_matrix


def bellman_ford_feasible(
    vertices: List[str], constraints: List[Tuple[str, str, int]]
) -> Optional[Dict[str, int]]:
    """Solve ``x_u − x_v ≤ b``; returns a solution or None if infeasible."""
    # Constraint graph: edge v -> u with weight b means x_u ≤ x_v + b.
    dist: Dict[str, float] = {v: 0.0 for v in vertices}
    for _ in range(len(vertices)):
        changed = False
        for u, v, b in constraints:
            if dist[v] + b < dist[u]:
                dist[u] = dist[v] + b
                changed = True
        if not changed:
            break
    else:
        # One more pass still relaxing => negative cycle => infeasible.
        for u, v, b in constraints:
            if dist[v] + b < dist[u]:
                return None
    return {v: int(dist[v]) for v in vertices}


def exact_min_period(
    graph: RetimingGraph,
) -> Tuple[int, Dict[str, int]]:
    """OPT1: binary-search the sorted D values; returns (period, retiming).

    The returned retiming is normalised to ``r(HOST) = 0``.
    """
    w_matrix, d_matrix = wd_matrices(graph)
    vertices = list(graph.vertices)
    base_constraints = [
        (e.tail, e.head, e.weight) for e in graph.edges
    ]

    def feasible(period: int) -> Optional[Dict[str, int]]:
        constraints = list(base_constraints)
        for (u, v), delay in d_matrix.items():
            if delay > period:
                constraints.append((u, v, w_matrix[(u, v)] - 1))
        return bellman_ford_feasible(vertices, constraints)

    candidates = sorted(set(d_matrix.values()))
    if not candidates:
        return 0, {v: 0 for v in vertices}
    lo, hi = 0, len(candidates) - 1
    best: Optional[Tuple[int, Dict[str, int]]] = None
    while lo <= hi:
        mid = (lo + hi) // 2
        period = candidates[mid]
        r = feasible(period)
        if r is not None:
            best = (period, r)
            hi = mid - 1
        else:
            lo = mid + 1
    if best is None:
        raise ValueError("no feasible period (combinational cycle?)")
    period, r = best
    offset = r[HOST]
    return period, {v: r[v] - offset for v in vertices}
