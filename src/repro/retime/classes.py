"""Latch classes and legal class-aware retiming moves (Legl et al. [9]).

A latch class ``cl = (e)`` groups latches by load-enable signal (paper
Sec. 3.1); regular latches form the ``None`` class.  Latches may merge or
move together during retiming only within one class, and a move across a
gate must take one latch of the *same* class from every fanin (forward) or
every fanout (backward) — Fig. 16 of the paper.

:class:`MultiClassGraph` keeps, per retiming edge, the ordered list of
latch classes, and implements single-gate moves with their legality
conditions.  The greedy optimiser in :mod:`repro.retime.incremental` drives
these moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.netlist.circuit import Circuit
from repro.retime.rgraph import HOST, RetimingGraph, build_retiming_graph

__all__ = ["MultiClassGraph", "build_multiclass_graph"]


@dataclass
class MultiClassGraph:
    """A retiming graph whose edges carry ordered latch-class lists."""

    graph: RetimingGraph
    # Ordered classes per edge index, tail-to-head (index 0 nearest tail).
    edge_classes: Dict[int, List[Optional[str]]] = field(default_factory=dict)
    _in_edges: Dict[str, List[int]] = field(default_factory=dict)
    _out_edges: Dict[str, List[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.edge_classes:
            self.edge_classes = {
                i: list(e.classes) for i, e in enumerate(self.graph.edges)
            }
        self._in_edges = {v: [] for v in self.graph.vertices}
        self._out_edges = {v: [] for v in self.graph.vertices}
        for i, e in enumerate(self.graph.edges):
            self._out_edges[e.tail].append(i)
            self._in_edges[e.head].append(i)

    # ------------------------------------------------------------------
    def in_edges(self, v: str) -> List[int]:
        """Edge indices whose head is ``v``."""
        return self._in_edges[v]

    def out_edges(self, v: str) -> List[int]:
        """Edge indices whose tail is ``v``."""
        return self._out_edges[v]

    def num_latches(self) -> int:
        """Total latches over all edge class lists."""
        return sum(len(cls) for cls in self.edge_classes.values())

    # ------------------------------------------------------------------
    # moves (Fig. 16)
    # ------------------------------------------------------------------
    def can_move_forward(self, v: str) -> Optional[str]:
        """Can one latch move from every fanin of ``v`` to every fanout?

        Legal iff every fanin edge has a latch adjacent to ``v`` (the last
        in tail-to-head order) and all those latches share one class.
        Returns the class, or ``None`` if illegal.
        """
        if v == HOST:
            return None
        ins = self._in_edges[v]
        if not ins:
            return None
        cls: Optional[str] = None
        first = True
        for idx in ins:
            classes = self.edge_classes[idx]
            if not classes:
                return None
            c = classes[-1]
            if first:
                cls, first = c, False
            elif c != cls:
                return None
        if first:
            return None
        return cls if cls is not None else "__regular__"

    def can_move_backward(self, v: str) -> Optional[str]:
        """Can one latch move from every fanout of ``v`` to every fanin?"""
        if v == HOST:
            return None
        outs = self._out_edges[v]
        if not outs:
            return None
        cls: Optional[str] = None
        first = True
        for idx in outs:
            classes = self.edge_classes[idx]
            if not classes:
                return None
            c = classes[0]
            if first:
                cls, first = c, False
            elif c != cls:
                return None
        if first:
            return None
        return cls if cls is not None else "__regular__"

    def move_forward(self, v: str) -> None:
        """Apply a legal forward move at ``v`` (raises if illegal)."""
        cls_tag = self.can_move_forward(v)
        if cls_tag is None:
            raise ValueError(f"illegal forward move at {v!r}")
        cls = None if cls_tag == "__regular__" else cls_tag
        for idx in self._in_edges[v]:
            self.edge_classes[idx].pop()
        for idx in self._out_edges[v]:
            self.edge_classes[idx].insert(0, cls)

    def move_backward(self, v: str) -> None:
        """Apply a legal backward move at ``v`` (raises if illegal)."""
        cls_tag = self.can_move_backward(v)
        if cls_tag is None:
            raise ValueError(f"illegal backward move at {v!r}")
        cls = None if cls_tag == "__regular__" else cls_tag
        for idx in self._out_edges[v]:
            self.edge_classes[idx].pop(0)
        for idx in self._in_edges[v]:
            self.edge_classes[idx].append(cls)

    # ------------------------------------------------------------------
    def arrival_times(self) -> Optional[Dict[str, int]]:
        """Longest zero-latch path delay per vertex (None on comb. cycle).

        As in :mod:`repro.retime.minperiod`, the host is split into a pure
        source and a pure sink so latch-free PI→PO paths do not read as
        cycles through the environment.
        """
        from collections import deque

        host_in = "__host_sink__"
        adj: Dict[str, List[str]] = {v: [] for v in self.graph.vertices}
        adj[host_in] = []
        for idx, e in enumerate(self.graph.edges):
            if not self.edge_classes[idx] and e.tail != e.head:
                head = host_in if e.head == HOST else e.head
                adj[e.tail].append(head)
        nodes = list(adj)
        indeg = {v: 0 for v in nodes}
        for tail, heads in adj.items():
            for h in heads:
                indeg[h] += 1
        queue = deque(v for v in nodes if indeg[v] == 0)
        order: List[str] = []
        while queue:
            v = queue.popleft()
            order.append(v)
            for h in adj[v]:
                indeg[h] -= 1
                if indeg[h] == 0:
                    queue.append(h)
        if len(order) != len(nodes):
            return None
        delay = dict(self.graph.delay)
        delay[host_in] = 0
        arrival = {v: delay[v] for v in nodes}
        for v in order:
            for h in adj[v]:
                arrival[h] = max(arrival[h], arrival[v] + delay[h])
        arrival[HOST] = max(arrival.get(HOST, 0), arrival.pop(host_in, 0))
        return arrival

    def period(self) -> Optional[int]:
        """Current clock period (None on a combinational cycle)."""
        arrival = self.arrival_times()
        if arrival is None:
            return None
        return max(arrival.values(), default=0)


def build_multiclass_graph(circuit: Circuit) -> MultiClassGraph:
    """Multi-class retiming graph of a circuit."""
    return MultiClassGraph(build_retiming_graph(circuit))
