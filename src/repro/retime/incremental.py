"""Greedy class-aware incremental retiming for load-enabled circuits.

The paper could not retime its industrial (load-enabled) circuits because
no public tool handled latch classes (Sec. 7.2).  This module provides that
capability as an extension: a hill-climbing optimiser over the legal
single-gate moves of :class:`~repro.retime.classes.MultiClassGraph`,
reducing the clock period while never applying an illegal (class-mixing)
move.  Verification of its output goes through the EDBF machinery, which is
exactly what Theorem 5.2 licenses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.netlist.circuit import Circuit, Latch
from repro.netlist.cube import Sop
from repro.retime.classes import MultiClassGraph, build_multiclass_graph
from repro.retime.rgraph import HOST

__all__ = ["incremental_retime_enabled", "rebuild_multiclass"]


def incremental_retime_enabled(
    circuit: Circuit, max_rounds: int = 200
) -> Tuple[Circuit, int, int]:
    """Greedy min-period retiming with class-aware moves.

    Returns ``(retimed circuit, old period, new period)``.  The result is
    never worse than the input; moves that do not strictly reduce the
    critical-path structure are rolled back.
    """
    mg = build_multiclass_graph(circuit)
    old_period = mg.period()
    if old_period is None:
        raise ValueError("combinational cycle in circuit")

    current = old_period
    for _ in range(max_rounds):
        improved = _one_round(mg, current)
        new_period = mg.period()
        assert new_period is not None
        if new_period < current:
            current = new_period
        elif not improved:
            break
    rebuilt = rebuild_multiclass(circuit, mg)
    return rebuilt, old_period, current


def _one_round(mg: MultiClassGraph, period: int) -> bool:
    """Try to shorten some critical path by one legal move."""
    arrival = mg.arrival_times()
    if arrival is None:
        return False
    critical = [
        v
        for v in mg.graph.vertices
        if v != HOST and arrival[v] >= period
    ]
    # Prefer moving latches forward into the start of long paths or
    # backward from their ends.
    for v in sorted(critical, key=lambda x: arrival[x]):
        # A forward move at a path-head vertex absorbs one gate of delay.
        if mg.can_move_forward(v) is not None:
            before = mg.period()
            mg.move_forward(v)
            after = mg.period()
            if after is not None and before is not None and after <= before:
                return True
            mg.move_backward(v)  # undo
    for v in sorted(critical, key=lambda x: -arrival[x]):
        if mg.can_move_backward(v) is not None:
            before = mg.period()
            mg.move_backward(v)
            after = mg.period()
            if after is not None and before is not None and after <= before:
                return True
            mg.move_forward(v)  # undo
    return False


def rebuild_multiclass(circuit: Circuit, mg: MultiClassGraph) -> Circuit:
    """Rebuild a netlist from a multi-class latch placement.

    Latch chains are shared across fanout edges by common tail-to-head
    class-list prefix.
    """
    graph = mg.graph
    result = Circuit(circuit.name + "_cretimed")
    result.inputs = list(circuit.inputs)
    result._input_set = set(result.inputs)

    po_set = set(circuit.outputs)

    def internal(sig: str) -> str:
        if sig in circuit.gates and sig in po_set:
            return "__g_" + sig
        return sig

    # chains[source] = list of (class, latch signal) already built, shared
    # by common prefix.
    chains: Dict[str, List[Tuple[Optional[str], str]]] = {}

    def tap(source_sig: str, classes: List[Optional[str]]) -> str:
        if not classes:
            return source_sig
        built = chains.setdefault(source_sig, [])
        sig = source_sig
        for depth, cls in enumerate(classes):
            if depth < len(built) and built[depth][0] == cls:
                sig = built[depth][1]
                continue
            if depth < len(built) and built[depth][0] != cls:
                # Prefix diverges: build an unshared chain from here on.
                return _unshared(sig, classes[depth:])
            new_latch = result.fresh_signal(f"__rt_{source_sig}_{depth + 1}")
            result.add_latch(new_latch, sig, cls)
            built.append((cls, new_latch))
            sig = new_latch
        return sig

    def _unshared(start: str, classes: List[Optional[str]]) -> str:
        sig = start
        for cls in classes:
            new_latch = result.fresh_signal(f"__rtx_{sig}")
            result.add_latch(new_latch, sig, cls)
            sig = new_latch
        return sig

    fanin_plan: Dict[str, List[Optional[Tuple[str, List[Optional[str]]]]]] = {
        g.output: [None] * len(g.inputs) for g in circuit.gates.values()
    }
    po_plan: Dict[str, Tuple[str, List[Optional[str]]]] = {}
    for idx, e in enumerate(graph.edges):
        src = internal(graph.source_signal[idx])
        classes = list(mg.edge_classes[idx])
        if e.head == HOST:
            assert e.po_name is not None
            po_plan[e.po_name] = (src, classes)
        else:
            fanin_plan[e.head][e.sink_pin] = (src, classes)

    for gate in circuit.gates.values():
        wired = []
        for pin, spec in enumerate(fanin_plan[gate.output]):
            assert spec is not None
            src, classes = spec
            wired.append(tap(src, classes))
        result.add_gate(internal(gate.output), tuple(wired), gate.sop)
    result.outputs = []
    for po in circuit.outputs:
        spec = po_plan.get(po)
        if spec is None:
            result.add_output(po)
            continue
        src, classes = spec
        sig = tap(src, classes)
        if result.driver_kind(po) is None:
            result.add_gate(po, (sig,), Sop.and_all(1))
            result.add_output(po)
        elif sig == po:
            result.add_output(po)
        else:
            result.add_output(sig)
    return result
