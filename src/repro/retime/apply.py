"""Applying a retiming vector back to a netlist.

Given a circuit, its retiming graph and a legal ``r``, rebuild the netlist
with the new latch placement: each edge ``(u → v)`` carries
``w_r = w + r(v) − r(u)`` latches.  Latch chains are shared across fanout
edges of the same driver (a chain of length ``max w_r`` with taps), which is
how real tools keep the latch count down; the area reported is the actual
rebuilt latch count.

Primary output names are preserved: a gate whose output name is also a PO
is renamed internally and the PO becomes a buffer after the (possibly
empty) latch chain, so retimed circuits remain name-compatible with the
original for verification.

The paper's setting has no latch initial values (unknown power-up), which
is exactly why retiming needs no initial-state computation here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.netlist.circuit import Circuit, Gate, Latch
from repro.netlist.cube import Sop
from repro.retime.minarea import min_area_retiming
from repro.retime.minperiod import clock_period, min_period_retiming
from repro.retime.rgraph import HOST, RetimingGraph, build_retiming_graph

__all__ = ["apply_retiming", "retime_min_period", "retime_min_area"]


def apply_retiming(
    circuit: Circuit,
    graph: RetimingGraph,
    r: Dict[str, int],
    name: Optional[str] = None,
) -> Circuit:
    """Rebuild the circuit under retiming ``r`` (uniform latch class only)."""
    uniform, latch_class = graph.uniform_class()
    if not uniform:
        raise ValueError(
            "apply_retiming requires a uniform latch class; "
            "use the incremental class-aware retimer instead"
        )
    result = Circuit(name or circuit.name + "_retimed")
    result.inputs = list(circuit.inputs)
    result._input_set = set(result.inputs)

    new_weight: Dict[int, int] = {}
    for idx, e in enumerate(graph.edges):
        w = e.weight + r[e.head] - r[e.tail]
        if w < 0:
            raise ValueError(f"illegal retiming: negative weight on edge {idx}")
        new_weight[idx] = w

    # Gates whose output name collides with a PO are renamed internally so
    # the PO name can sit after the new latch chain.
    po_set = set(circuit.outputs)

    def internal(sig: str) -> str:
        if sig in circuit.gates and sig in po_set:
            return "__g_" + sig
        return sig

    chain_taps: Dict[str, List[str]] = {}

    def tap(source_sig: str, depth: int) -> str:
        """`source` delayed by `depth` latches, building/extending the chain."""
        if depth == 0:
            return source_sig
        taps = chain_taps.setdefault(source_sig, [])
        while len(taps) < depth:
            prev = taps[-1] if taps else source_sig
            new_latch = result.fresh_signal(f"__rt_{source_sig}_{len(taps) + 1}")
            result.add_latch(new_latch, prev, latch_class)
            taps.append(new_latch)
        return taps[depth - 1]

    # Wire plans: per gate, (source signal, latch depth) per pin; per PO.
    fanin_plan: Dict[str, List[Optional[Tuple[str, int]]]] = {
        g.output: [None] * len(g.inputs) for g in circuit.gates.values()
    }
    po_plan: Dict[str, Tuple[str, int]] = {}
    for idx, e in enumerate(graph.edges):
        src = internal(graph.source_signal[idx])
        if e.head == HOST:
            assert e.po_name is not None
            po_plan[e.po_name] = (src, new_weight[idx])
        else:
            fanin_plan[e.head][e.sink_pin] = (src, new_weight[idx])

    for gate in circuit.gates.values():
        wired = []
        for pin, spec in enumerate(fanin_plan[gate.output]):
            assert spec is not None, (gate.output, pin)
            src, w = spec
            wired.append(tap(src, w))
        result.add_gate(internal(gate.output), tuple(wired), gate.sop)

    result.outputs = []
    for po in circuit.outputs:
        spec = po_plan.get(po)
        if spec is None:
            # PO fed directly by a PI without an edge record (no such case
            # in graphs we build, but keep a safe fallback).
            result.add_output(po)
            continue
        src, w = spec
        sig = tap(src, w)
        if result.driver_kind(po) is None:
            result.add_gate(po, (sig,), Sop.and_all(1))
            result.add_output(po)
        elif sig == po:
            result.add_output(po)
        else:  # PO name is taken by a PI; expose the delayed signal as-is.
            result.add_output(sig)
    return result


def retime_min_period(circuit: Circuit) -> Tuple[Circuit, int, int]:
    """Minimum-period retiming; returns (circuit, old period, new period)."""
    graph = build_retiming_graph(circuit)
    old = clock_period(graph)
    if old is None:
        raise ValueError("combinational cycle in circuit")
    period, r = min_period_retiming(graph)
    retimed = apply_retiming(circuit, graph, r)
    return retimed, old, period


def retime_min_area(
    circuit: Circuit, period: Optional[int] = None
) -> Tuple[Optional[Circuit], int]:
    """Constrained min-area retiming; returns (circuit or None, period used).

    ``period`` defaults to the circuit's current clock period (pure area
    recovery without slowing the clock).
    """
    graph = build_retiming_graph(circuit)
    current = clock_period(graph)
    if current is None:
        raise ValueError("combinational cycle in circuit")
    target = period if period is not None else current
    r = min_area_retiming(graph, target)
    if r is None:
        return None, target
    return apply_retiming(circuit, graph, r), target
