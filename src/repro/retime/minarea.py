"""Constrained minimum-area retiming (the Minaret analogue [6]).

Minimise the total latch count subject to a clock-period bound.  The cost
model includes **fanout sharing** (Leiserson-Saxe §8 / Minaret): all fanout
branches of one driver share a single latch chain, so the driver's cost is
``max_i w_r(e_i)`` over its fanout edges, not the sum.  Introducing one
auxiliary variable ``s_g`` per driver group ``g`` linearises the max:

    min  Σ_g (s_g − r(tail_g))
    s.t. r(tail) − r(head) ≤ w(e)                (legality, every edge)
         r(head_i) − s_g   ≤ −w(e_i)             (s_g ≥ max_i w_r(e_i))
         Δ(v) ≤ φ under r                        (period)

All constraints are differences, so the matrix is totally unimodular and
the LP optimum is integral.  The period condition is enforced by *lazy
constraint generation*: solve, measure the achieved period, add
``r(u) − r(v) ≤ w(p) − 1`` along violating critical paths, repeat.  This
avoids the O(V²) W/D matrices while giving the same optimum.  scipy's
HiGHS solver does the numeric work.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.retime.minperiod import arrival_times, clock_period
from repro.retime.rgraph import HOST, RetimingGraph

__all__ = ["min_area_retiming"]

_MAX_ROUNDS = 60


def _solve_lp(
    variables: List[str],
    objective: Dict[str, float],
    constraints: List[Tuple[str, str, int]],  # (u, v, b): x_u - x_v <= b
    bound: float,
) -> Optional[Dict[str, int]]:
    """Min Σ c_x·x subject to difference constraints (integral optimum)."""
    from scipy.optimize import linprog

    index = {v: i for i, v in enumerate(variables)}
    n = len(variables)
    c = np.zeros(n)
    for v, coeff in objective.items():
        c[index[v]] += coeff
    rows = len(constraints)
    a_ub = np.zeros((rows, n))
    b_ub = np.zeros(rows)
    for i, (u, v, b) in enumerate(constraints):
        a_ub[i, index[u]] += 1.0
        a_ub[i, index[v]] -= 1.0
        b_ub[i] = b
    result = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=[(-bound, bound)] * n,
        method="highs",
    )
    if not result.success:
        return None
    return {v: int(round(result.x[index[v]])) for v in variables}


def _critical_path_constraints(
    graph: RetimingGraph, r: Dict[str, int], period: int
) -> List[Tuple[str, str, int]]:
    """Constraints cutting the current over-long zero-weight paths."""
    arrival = arrival_times(graph, r)
    if arrival is None:
        return []
    pred: Dict[str, Optional[Tuple[str, int]]] = {v: None for v in graph.vertices}
    for idx, e in enumerate(graph.edges):
        w = e.weight + r[e.head] - r[e.tail]
        # Paths never continue *through* the environment, so edges into the
        # host are not interior path edges.
        if w == 0 and e.tail != e.head and e.head != HOST:
            if arrival.get(e.head, 0) == arrival.get(e.tail, 0) + graph.delay[e.head]:
                pred[e.head] = (e.tail, idx)
    out: List[Tuple[str, str, int]] = []
    seen_pairs: Set[Tuple[str, str]] = set()
    for v in graph.vertices:
        if arrival[v] <= period:
            continue
        # Walk back along the critical path to the *shortest* suffix whose
        # delay already violates the period — a tighter constraint than one
        # over the whole source-to-v path.
        u = v
        w_orig = 0
        hops = 0
        while hops <= len(graph.vertices):
            suffix_delay = arrival[v] - arrival[u] + graph.delay[u]
            if suffix_delay > period or pred[u] is None:
                break
            tail, idx = pred[u]  # type: ignore[misc]
            w_orig += graph.edges[idx].weight
            u = tail
            hops += 1
        if u != v and (u, v) not in seen_pairs:
            seen_pairs.add((u, v))
            out.append((u, v, w_orig - 1))
    return out


def min_area_retiming(
    graph: RetimingGraph,
    period: int,
    fixed: Sequence[str] = (),
) -> Optional[Dict[str, int]]:
    """Minimum-latch retiming meeting ``period``; None if infeasible.

    ``fixed`` vertices are pinned at r = 0.  Returns the retiming vector
    over graph vertices (auxiliary sharing variables are internal).
    """
    # Group fanout edges by driver signal (chain sharing).
    groups: Dict[str, List[int]] = {}
    for idx in range(len(graph.edges)):
        src = graph.source_signal[idx]
        groups.setdefault(src, []).append(idx)

    variables: List[str] = list(graph.vertices)
    share_var: Dict[str, str] = {}
    for src in groups:
        name = f"__s__{src}"
        share_var[src] = name
        variables.append(name)

    objective: Dict[str, float] = {}
    base_constraints: List[Tuple[str, str, int]] = []
    for e in graph.edges:
        base_constraints.append((e.tail, e.head, e.weight))
    for src, edge_idxs in groups.items():
        s = share_var[src]
        tail = graph.edges[edge_idxs[0]].tail
        objective[s] = objective.get(s, 0.0) + 1.0
        objective[tail] = objective.get(tail, 0.0) - 1.0
        for idx in edge_idxs:
            e = graph.edges[idx]
            # s >= w(e) + r(head)  <=>  r(head) - s <= -w(e)
            base_constraints.append((e.head, s, -e.weight))
    for v in fixed:
        base_constraints.append((v, HOST, 0))
        base_constraints.append((HOST, v, 0))

    # The objective is shift-invariant; a dedicated zero variable tied to
    # the host lets us renormalise the solution to r(HOST) = 0.
    variables.append("__zero__")
    objective["__zero__"] = 0.0
    base_constraints.append((HOST, "__zero__", 0))
    base_constraints.append(("__zero__", HOST, 0))

    bound = float(sum(e.weight for e in graph.edges) + len(graph.vertices) + 10)
    constraints = list(base_constraints)
    for _ in range(_MAX_ROUNDS):
        solution = _solve_lp(variables, objective, constraints, bound)
        if solution is None:
            return None
        zero = solution["__zero__"]
        r = {v: solution[v] - zero for v in graph.vertices}
        achieved = clock_period(graph, r)
        if achieved is None:
            return None  # should not happen: legality constraints hold
        if achieved <= period:
            return r
        extra = _critical_path_constraints(graph, r, period)
        added = False
        existing = set(constraints)
        for con in extra:
            if con not in existing:
                constraints.append(con)
                existing.add(con)
                added = True
        if not added:
            return None  # no progress
    return None
