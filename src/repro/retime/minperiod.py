"""Minimum-period retiming (Leiserson-Saxe FEAS + binary search).

``clock_period(graph, r)`` computes the longest zero-weight combinational
path under retiming ``r``.  ``feasible_retiming(graph, period)`` runs the
FEAS algorithm: repeatedly compute arrival times and increment ``r`` on
vertices whose arrival exceeds the target.  ``min_period_retiming`` binary
searches the achievable period (integers, unit gate delays).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.retime.rgraph import HOST, RetimingGraph

__all__ = ["clock_period", "feasible_retiming", "min_period_retiming"]


def _retimed_weight(graph: RetimingGraph, r: Dict[str, int], idx: int) -> int:
    e = graph.edges[idx]
    return e.weight + r[e.head] - r[e.tail]


_HOST_IN = "__host_sink__"


def _zero_weight_adjacency(
    graph: RetimingGraph, r: Dict[str, int]
) -> Optional[Dict[str, List[str]]]:
    """Adjacency over zero-weight edges; None if some weight went negative.

    The host vertex is split into a pure source (its out-edges, i.e. the
    PIs) and a pure sink (its in-edges, the POs): combinational paths never
    continue *through* the environment, so a latch-free PI→PO path must not
    read as a cycle.
    """
    adj: Dict[str, List[str]] = {v: [] for v in graph.vertices}
    adj[_HOST_IN] = []
    for idx, e in enumerate(graph.edges):
        w = _retimed_weight(graph, r, idx)
        if w < 0:
            return None
        if w == 0 and e.tail != e.head:
            head = _HOST_IN if e.head == HOST else e.head
            adj[e.tail].append(head)
    return adj


def arrival_times(
    graph: RetimingGraph, r: Optional[Dict[str, int]] = None
) -> Optional[Dict[str, int]]:
    """Δ(v): longest combinational (zero-weight) path delay ending at v.

    Returns ``None`` when a zero-weight cycle exists (combinational loop —
    the retiming is illegal).  The host vertex has delay 0 and acts as a
    pure source/sink.
    """
    if r is None:
        r = {v: 0 for v in graph.vertices}
    adj = _zero_weight_adjacency(graph, r)
    if adj is None:
        return None
    nodes = list(adj)
    indeg: Dict[str, int] = {v: 0 for v in nodes}
    for tail, heads in adj.items():
        for h in heads:
            indeg[h] += 1
    queue = deque(v for v in nodes if indeg[v] == 0)
    arrival: Dict[str, int] = {}
    order: List[str] = []
    while queue:
        v = queue.popleft()
        order.append(v)
        for h in adj[v]:
            indeg[h] -= 1
            if indeg[h] == 0:
                queue.append(h)
    if len(order) != len(nodes):
        return None  # zero-weight cycle
    delay = dict(graph.delay)
    delay[_HOST_IN] = 0
    for v in order:
        arrival[v] = delay[v]
    for v in order:
        for h in adj[v]:
            arrival[h] = max(arrival[h], arrival[v] + delay[h])
    arrival[HOST] = max(arrival.get(HOST, 0), arrival.pop(_HOST_IN, 0))
    return arrival


def clock_period(
    graph: RetimingGraph, r: Optional[Dict[str, int]] = None
) -> Optional[int]:
    """The clock period (max combinational path delay) under retiming r."""
    arrival = arrival_times(graph, r)
    if arrival is None:
        return None
    return max(arrival.values(), default=0)


def feasible_retiming(
    graph: RetimingGraph, period: int
) -> Optional[Dict[str, int]]:
    """FEAS: find a legal retiming achieving ``period``, or None.

    The host vertex is fixed at r = 0 (latches cannot cross the circuit
    boundary).
    """
    r = {v: 0 for v in graph.vertices}
    n = len(graph.vertices)
    for _ in range(n - 1):
        arrival = arrival_times(graph, r)
        if arrival is None:
            return None
        violated = False
        for v in graph.vertices:
            if v == HOST:
                continue
            if arrival[v] > period:
                r[v] += 1
                violated = True
        if not violated:
            return r
    arrival = arrival_times(graph, r)
    if arrival is not None and max(arrival.values(), default=0) <= period:
        return r
    return None


def min_period_retiming(
    graph: RetimingGraph,
) -> Tuple[int, Dict[str, int]]:
    """Binary-search the minimum achievable period; returns (period, r)."""
    base = clock_period(graph)
    if base is None:
        raise ValueError("circuit has a combinational cycle")
    lo = max((graph.delay[v] for v in graph.vertices), default=0)
    hi = base
    best_r = {v: 0 for v in graph.vertices}
    best_period = base
    while lo < hi:
        mid = (lo + hi) // 2
        r = feasible_retiming(graph, mid)
        if r is not None:
            best_r, best_period = r, mid
            hi = mid
        else:
            lo = mid + 1
    if best_period > lo:
        r = feasible_retiming(graph, lo)
        if r is not None:
            best_r, best_period = r, lo
    return best_period, best_r
