"""The retiming graph (Leiserson-Saxe).

Vertices are combinational gates plus the distinguished ``HOST`` vertex
standing for the circuit's environment (all PIs and POs).  There is one
edge per (driver, reader) connection; its weight is the number of latches
on that connection.  Gate delays default to 1 (the paper's unit-delay
model).

The builder records, for every edge, the ordered list of latch classes
(enable signals) crossed, so class-aware legality checks and the rebuild
step can preserve enables.  The classic algorithms require a uniform class
(regular latches); :mod:`repro.retime.incremental` handles the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.netlist.circuit import Circuit

__all__ = ["HOST", "REdge", "RetimingGraph", "build_retiming_graph"]

HOST = "__host__"


@dataclass
class REdge:
    """One retiming edge."""

    tail: str
    head: str
    weight: int
    # Enable classes of the latches on this connection, tail-to-head order;
    # None entries are regular latches.
    classes: Tuple[Optional[str], ...]
    # The head gate's fanin position this edge feeds (-1 for host/PO edges),
    # and the PO name when the head is the host.
    sink_pin: int = -1
    po_name: Optional[str] = None


@dataclass
class RetimingGraph:
    """G = (V, E, d, w) plus bookkeeping to rebuild the netlist."""

    vertices: List[str] = field(default_factory=list)
    delay: Dict[str, int] = field(default_factory=dict)
    edges: List[REdge] = field(default_factory=list)
    # Source signal of each vertex's output (gate output name; HOST handled
    # per-edge via source_signal).
    source_signal: Dict[int, str] = field(default_factory=dict)  # edge idx -> tail signal

    def out_edges(self, v: str) -> List[int]:
        """Edge indices whose tail is ``v``."""
        return [i for i, e in enumerate(self.edges) if e.tail == v]

    def in_edges(self, v: str) -> List[int]:
        """Edge indices whose head is ``v``."""
        return [i for i, e in enumerate(self.edges) if e.head == v]

    def num_latches(self) -> int:
        """Total latch count over all edges (per-edge, unshared)."""
        return sum(e.weight for e in self.edges)

    def uniform_class(self) -> Tuple[bool, Optional[str]]:
        """Is there a single latch class?  Returns (uniform, the class)."""
        seen: Set[Optional[str]] = set()
        for e in self.edges:
            seen.update(e.classes)
        if not seen:
            return True, None
        if len(seen) == 1:
            return True, next(iter(seen))
        return False, None


def build_retiming_graph(circuit: Circuit, unit_delay: int = 1) -> RetimingGraph:
    """Build the retiming graph of a circuit.

    Every latch must lie on a gate-to-gate / port-to-gate connection; pure
    latch-to-latch chains are traced through.  Latch enables must not be
    driven by logic that itself moves — the builder verifies each enable is
    a PI (or None); richer enables require exposure or the incremental
    retimer.
    """
    g = RetimingGraph()
    g.vertices = [HOST] + sorted(circuit.gates)

    def gate_delay(out: str) -> int:
        gate = circuit.gates[out]
        # Buffers and constants are not logic levels (sweep removes them).
        if not gate.inputs:
            return 0
        if (
            len(gate.inputs) == 1
            and len(gate.sop.cubes) == 1
            and gate.sop.cubes[0] == "1"
        ):
            return 0
        return unit_delay

    g.delay = {v: gate_delay(v) for v in g.vertices if v != HOST}
    g.delay[HOST] = 0

    def resolve_enable(sig: str) -> str:
        """Follow identity buffers back to the enable's source.

        Buffer copies of one PI enable are the same latch class; the class
        is keyed (and rebuilt) on the resolved source signal.
        """
        seen = set()
        while sig in circuit.gates and sig not in seen:
            seen.add(sig)
            gate = circuit.gates[sig]
            if (
                len(gate.inputs) == 1
                and len(gate.sop.cubes) == 1
                and gate.sop.cubes[0] == "1"
            ):
                sig = gate.inputs[0]
            else:
                break
        return sig

    def trace(signal: str) -> Tuple[str, str, Tuple[Optional[str], ...]]:
        """Walk back through latches; returns (vertex, source signal, classes)."""
        classes: List[Optional[str]] = []
        sig = signal
        while sig in circuit.latches:
            latch = circuit.latches[sig]
            enable = latch.enable
            if enable is not None:
                enable = resolve_enable(enable)
                if not circuit.is_input(enable):
                    raise ValueError(
                        f"latch {sig!r} enable {latch.enable!r} is derived "
                        "logic; classic retiming requires PI enables (use "
                        "the incremental retimer or expose the latch)"
                    )
            classes.append(enable)
            sig = latch.data
        classes.reverse()  # tail-to-head order
        kind = circuit.driver_kind(sig)
        if kind == "gate":
            return sig, sig, tuple(classes)
        # PI (or undriven, which validate_circuit would reject)
        return HOST, sig, tuple(classes)

    for gate in circuit.gates.values():
        for pin, src in enumerate(gate.inputs):
            tail, source_sig, classes = trace(src)
            edge = REdge(tail, gate.output, len(classes), classes, sink_pin=pin)
            g.edges.append(edge)
            g.source_signal[len(g.edges) - 1] = source_sig
    for po in circuit.outputs:
        tail, source_sig, classes = trace(po)
        edge = REdge(tail, HOST, len(classes), classes, sink_pin=-1, po_name=po)
        g.edges.append(edge)
        g.source_signal[len(g.edges) - 1] = source_sig
    return g
