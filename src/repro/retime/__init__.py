"""Retiming substrate (Leiserson-Saxe, plus a Minaret-style min-area mode).

* :mod:`repro.retime.rgraph` — the retiming graph ``G = (V, E, d, w)`` built
  from a circuit, with the host vertex convention;
* :mod:`repro.retime.minperiod` — minimum-period retiming via binary search
  over clock periods with the FEAS feasibility algorithm;
* :mod:`repro.retime.minarea` — constrained minimum-area retiming (the
  Minaret analogue [6]) via LP with lazy period-constraint generation;
* :mod:`repro.retime.apply` — applying a retiming vector back to a netlist
  (latch placement with fanout-chain sharing);
* :mod:`repro.retime.classes` — latch classes and legal class-aware moves
  (Legl et al. [9], Fig. 16);
* :mod:`repro.retime.incremental` — greedy class-aware local retiming for
  circuits with load-enabled latches (the capability the paper lacked a
  public tool for).
"""

from repro.retime.rgraph import RetimingGraph, build_retiming_graph
from repro.retime.minperiod import min_period_retiming, clock_period, feasible_retiming
from repro.retime.minarea import min_area_retiming
from repro.retime.apply import apply_retiming, retime_min_period, retime_min_area
from repro.retime.incremental import incremental_retime_enabled
from repro.retime.wdmatrix import exact_min_period, wd_matrices

__all__ = [
    "exact_min_period",
    "wd_matrices",
    "RetimingGraph",
    "build_retiming_graph",
    "min_period_retiming",
    "clock_period",
    "feasible_retiming",
    "min_area_retiming",
    "apply_retiming",
    "retime_min_period",
    "retime_min_area",
    "incremental_retime_enabled",
]
