"""Row-level checkpointing for the table harnesses.

A long Table 1 run that dies on row 30 of 36 should not have to redo the
first 29 rows.  The harness records every finished row into a checkpoint
file immediately (so an interrupt at any point loses at most the row in
flight), and ``--resume`` replays recorded rows instead of recomputing
them.

On-disk format — a versioned JSON envelope::

    {"version": 1, "config": {...}, "rows": {"s400": {...}, ...}}

``config`` captures the harness parameters that make rows comparable
(harness name, unateness, effort).  A checkpoint whose config differs
from the resuming run is ignored wholesale — resuming a ``--unate`` run
from a structural-exposure checkpoint would silently mix incomparable
rows.  Loads are as paranoid as the proof cache's: unparseable files,
missing envelopes, and wrong schema versions all degrade to "no
checkpoint", never to corrupt rows.  Writes go through a temp file +
``os.replace`` so an interrupt mid-write cannot destroy the file.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Optional, Union

__all__ = ["Checkpoint", "CHECKPOINT_VERSION"]

#: On-disk schema version; files under a different version are ignored.
CHECKPOINT_VERSION = 1


class Checkpoint:
    """A ``row name -> row dict`` store bound to one harness configuration."""

    def __init__(
        self,
        path: Union[str, os.PathLike],
        config: Optional[Dict[str, object]] = None,
    ) -> None:
        self.path = os.fspath(path)
        self.config: Dict[str, object] = dict(config or {})
        self.rows: Dict[str, Dict[str, object]] = {}

    def load(self) -> Dict[str, Dict[str, object]]:
        """Read recorded rows; anything invalid degrades to no rows."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except (OSError, ValueError):
            return {}
        if not isinstance(raw, dict):
            return {}
        if raw.get("version") != CHECKPOINT_VERSION:
            return {}
        if raw.get("config") != self.config:
            return {}  # different harness parameters: rows not comparable
        rows = raw.get("rows")
        if not isinstance(rows, dict):
            return {}
        self.rows = {
            str(name): row
            for name, row in rows.items()
            if isinstance(row, dict)
        }
        return dict(self.rows)

    def record(self, name: str, row: Dict[str, object]) -> None:
        """Record one finished row and flush the file atomically."""
        self.rows[str(name)] = row
        self._save()

    def _save(self) -> None:
        payload = {
            "version": CHECKPOINT_VERSION,
            "config": self.config,
            "rows": self.rows,
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def __contains__(self, name: str) -> bool:
        return name in self.rows

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Checkpoint({len(self.rows)} rows, {self.path!r})"
