"""Table 2 harness: latches exposed on industrial-style circuits.

Regenerates the paper's Table 2: for each Fig. 20-style circuit, the total
latch count and the number of latches the feedback analysis exposes —
first with the paper's purely structural analysis, then with the
positive-unateness refinement the paper predicts "would lead to reduced
number of exposed latches".

Run as a module::

    python -m repro.flows.table2 [--quick]
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bench.industrial import TABLE2_CIRCUITS, build_table2_circuit
from repro.core.expose import choose_latches_to_expose
from repro.flows.report import render_table
from repro.obs.console import Console
from repro.obs.trace import coerce_tracer

__all__ = ["table2_row", "run_table2", "Table2Row"]


@dataclass
class Table2Row:
    name: str
    latches: int
    exposed_structural: int
    exposed_unate: int
    paper_exposed: int
    seconds: float
    # Row lifecycle: "ok", or "error" when the analysis raised and the
    # harness contained it (``error`` then holds the exception's repr).
    status: str = "ok"
    error: Optional[str] = None


def table2_row(name: str) -> Table2Row:
    """Run the exposure analysis for one Table 2 circuit."""
    entry = next(e for e in TABLE2_CIRCUITS if e[0] == name)
    circuit = build_table2_circuit(name)
    t0 = time.perf_counter()
    structural, _ = choose_latches_to_expose(circuit, use_unateness=False)
    with_unate, remodel = choose_latches_to_expose(circuit, use_unateness=True)
    elapsed = time.perf_counter() - t0
    return Table2Row(
        name,
        circuit.num_latches(),
        len(structural),
        len(with_unate),
        entry[2],
        elapsed,
    )


def run_table2(
    names: Optional[Sequence[str]] = None,
    stream=None,
    on_error: str = "skip",
    console: Optional[Console] = None,
    tracer=None,
) -> List[Table2Row]:
    """Run the Table 2 harness; prints through ``console``.

    ``on_error="skip"`` (default) records a row whose analysis raises as
    an ERROR row and continues; ``"abort"`` re-raises.  The legacy
    ``stream`` argument still works (None keeps the harness silent when
    no ``console`` is passed).
    """
    if on_error not in ("skip", "abort"):
        raise ValueError(f"on_error must be 'skip' or 'abort', got {on_error!r}")
    if console is None:
        console = Console.for_stream(stream)
    tracer = coerce_tracer(tracer)
    if names is None:
        names = [entry[0] for entry in TABLE2_CIRCUITS]
    rows = []
    run_span = tracer.span("flow.table2", cat="flow", rows=len(names))
    for name in names:
        try:
            with tracer.span("flow.row", cat="flow", circuit=name):
                row = table2_row(name)
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            if on_error == "abort":
                run_span.close()
                raise
            row = Table2Row(name, 0, 0, 0, 0, 0.0, status="error", error=repr(exc))
            tracer.instant("flow.row.error", circuit=name, error=repr(exc))
        if row.status == "error":
            console.info(f"  {name}: ERROR ({row.error})")
        else:
            console.info(
                f"  {name}: {row.exposed_structural}/{row.latches} "
                f"exposed ({row.seconds:.1f}s)"
            )
        rows.append(row)
    run_span.close()
    console.result(format_table2(rows))
    return rows


def format_table2(rows: Sequence[Table2Row]) -> str:
    """Render collected rows as the Table 2 text."""
    headers = [
        "Example",
        "#Latches",
        "#Exposed",
        "#Exposed(unate)",
        "Paper #Exposed",
        "%",
    ]
    table = []
    for r in rows:
        if r.status == "error":
            table.append([r.name, None, None, None, None, "ERROR"])
            continue
        table.append(
            [
                r.name,
                r.latches,
                r.exposed_structural,
                r.exposed_unate,
                r.paper_exposed,
                round(100 * r.exposed_structural / max(1, r.latches)),
            ]
        )
    return render_table(
        headers, table, title="Table 2 — latches exposed (industrial circuits)"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.flows.table2`` entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small circuits only")
    parser.add_argument("--circuits", nargs="*")
    parser.add_argument(
        "--on-error",
        choices=("skip", "abort"),
        default="skip",
        help="a row whose analysis raises: record an ERROR row and "
        "continue (skip, default) or stop the run (abort)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-row progress lines (the table still prints)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="extra diagnostics"
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a structured JSONL trace of the run (see repro profile)",
    )
    args = parser.parse_args(argv)
    if args.circuits:
        names = args.circuits
    elif args.quick:
        names = [e[0] for e in TABLE2_CIRCUITS if e[1] <= 700]
    else:
        names = None
    from repro.obs.trace import Tracer

    console = Console(quiet=args.quiet, verbose=args.verbose)
    tracer = (
        Tracer(path=args.trace, meta={"command": "table2"})
        if args.trace
        else None
    )
    try:
        run_table2(names, on_error=args.on_error, console=console, tracer=tracer)
    finally:
        if tracer is not None:
            tracer.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
