"""Plain-text table rendering for the experiment harnesses."""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["render_table"]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width table, right-aligned numerics."""
    def fmt(cell: object) -> str:
        if cell is None:
            return "-"
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in text_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)
