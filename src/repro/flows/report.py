"""Plain-text table rendering for the experiment harnesses."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["render_table", "summarize_engine_stats", "compact_stats"]

#: Robustness/cascade counters that are all-zero on a healthy unbudgeted
#: run.  ``EngineStats.as_dict`` always emits them (stable key set); the
#: render layer drops the zero ones so reports stay readable.
SUPPRESS_WHEN_ZERO = frozenset(
    {
        "cascade_sim",
        "cascade_bdd",
        "cascade_sat",
        "bdd_blowups",
        "budget_exhausted",
        "worker_failures",
        "worker_timeouts",
        "worker_retries",
        "units_requeued",
        "pool_failures",
    }
)


def compact_stats(stats: Mapping[str, float]) -> Dict[str, float]:
    """Render-time zero suppression for the canonical stats key set.

    The engine emits every counter on every run (so the schema is stable
    for aggregation and tests); this drops the robustness counters that
    are zero — the display form previous releases printed.  Prefix
    variants (``cec_cascade_sat``, …) are suppressed the same way.
    """
    out: Dict[str, float] = {}
    for key, value in stats.items():
        base = key.rsplit("cec_", 1)[-1] if "cec_" in key else key
        if base in SUPPRESS_WHEN_ZERO and not value:
            continue
        out[key] = value
    return out


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width table, right-aligned numerics."""
    def fmt(cell: object) -> str:
        if cell is None:
            return "-"
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in text_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def summarize_engine_stats(
    stats_list: Iterable[Mapping[str, float]], prefix: str = "cec_"
) -> str:
    """Aggregate CEC engine tracing fields across a harness run.

    ``stats_list`` is typically the ``verify_stats`` of every flow result;
    ``prefix`` selects the engine's fields inside those dicts (the verify
    layer re-exports them as ``cec_sat_queries``, ``cec_cache_hits``, …).
    Returns a one-block summary: total SAT queries, sweep outcomes, cache
    traffic with hit rate, and the accumulated per-phase engine time —
    the numbers that show what the partition/parallel/cache layers saved.
    """
    totals: dict = {}
    phase_totals: dict = {}
    for stats in stats_list:
        for key, value in stats.items():
            if not key.startswith(prefix):
                continue
            name = key[len(prefix):]
            if name.startswith("time_"):
                phase_totals[name[len("time_"):]] = (
                    phase_totals.get(name[len("time_"):], 0.0) + value
                )
            elif isinstance(value, (int, float)):
                totals[name] = totals.get(name, 0.0) + value
    if not totals and not phase_totals:
        return "engine stats: none collected"
    lines = ["CEC engine totals:"]
    queries = int(totals.get("sat_queries", 0))
    merges = int(totals.get("sweep_merges", 0))
    refuted = int(totals.get("sweep_refuted", 0))
    unknown = int(totals.get("sweep_unknown", 0))
    lines.append(
        f"  sat queries {queries}  sweep merges {merges}  "
        f"refuted {refuted}  unknown {unknown}"
    )
    hits = int(totals.get("cache_hits", 0))
    misses = int(totals.get("cache_misses", 0))
    if hits or misses:
        rate = 100.0 * hits / max(1, hits + misses)
        lines.append(
            f"  cache hits {hits}  misses {misses}  "
            f"stores {int(totals.get('cache_stores', 0))}  "
            f"hit rate {rate:.0f}%"
        )
    if phase_totals:
        phases = "  ".join(
            f"{name} {seconds:.2f}s"
            for name, seconds in sorted(phase_totals.items())
        )
        lines.append(f"  engine time: {phases}")
    return "\n".join(lines)
