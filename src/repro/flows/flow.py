"""The Fig. 19 experiment pipeline.

Circuits, following the paper's lettering (Sec. 8):

=====  =====================================================================
A      the original sequential circuit
B      A with the minimal latch set exposed (feedback constraint satisfied)
C      B after delay synthesis → min-period retiming → resynthesis
D      A after combinational optimisation only (the baseline)
E      B after constrained min-area retiming at D's delay → resynthesis
F      A after retiming+synthesis *without* exposure (optimisation loss probe)
G      A after constrained min-area retiming at D's delay (no exposure)
H, J   combinational circuits of the CBFs of B and C (built inside the
       sequential checker); "H vs J" is the verification step
=====  =====================================================================

Area and delay numbers come from technology mapping onto the paper's
library (INV/NAND2/NOR2, unit delay, fanout ≤ 4); areas are normalised
against D as in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.api import VerifyRequest, verify_pair
from repro.core.expose import prepare_circuit
from repro.core.verify import SeqVerdict
from repro.netlist.circuit import Circuit
from repro.obs.trace import coerce_tracer
from repro.retime.apply import retime_min_area, retime_min_period
from repro.synth.depth import circuit_depth
from repro.synth.script import optimize_sequential_delay
from repro.synth.techmap import mapped_stats, tech_map

__all__ = ["FlowResult", "run_flow"]


def _retime_min_period_any(circuit: Circuit, result: "FlowResult") -> Circuit:
    """Classic min-period retiming, the incremental class-aware retimer as
    fallback, or synthesis-only when enables are derived logic (remodelled
    feedback latches cannot move — the same limitation the paper reports
    for its industrial circuits, Sec. 8)."""
    try:
        retimed, _, _ = retime_min_period(circuit)
        return retimed
    except ValueError:
        pass
    try:
        from repro.retime.incremental import incremental_retime_enabled

        retimed, _, _ = incremental_retime_enabled(circuit)
        result.notes += "incremental retimer; "
        return retimed
    except ValueError:
        result.notes += "retiming skipped (derived enables); "
        return circuit


@dataclass
class FlowResult:
    """All metrics of one Table 1 row.

    ``status`` is the row's lifecycle outcome — ``"ok"`` for a row that ran
    to completion (whatever its verdict), ``"error"`` when the flow raised
    and the harness contained it, ``"timeout"`` when a row budget ran dry
    before the flow finished.  ``error`` holds the contained exception's
    repr for error rows.
    """

    name: str
    latches_a: int = 0
    pct_exposed: float = 0.0
    # Per-variant latch counts / normalised areas / mapped delays.
    latches: Dict[str, int] = field(default_factory=dict)
    area: Dict[str, float] = field(default_factory=dict)
    delay: Dict[str, int] = field(default_factory=dict)
    verify_seconds: float = 0.0
    verify_verdict: Optional[SeqVerdict] = None
    verify_reason: Optional[str] = None
    # Verification stats, including the CEC engine's ``cec_``-prefixed
    # tracing fields (phase times, cache hits, worker utilisation).
    verify_stats: Dict[str, float] = field(default_factory=dict)
    notes: str = ""
    status: str = "ok"
    error: Optional[str] = None

    def normalised_area(self, variant: str) -> Optional[float]:
        """Mapped area of a variant divided by D's area."""
        base = self.area.get("D")
        if not base:
            return None
        value = self.area.get(variant)
        if value is None:
            return None
        return value / base

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (checkpoint rows, reports)."""
        return {
            "name": self.name,
            "latches_a": self.latches_a,
            "pct_exposed": self.pct_exposed,
            "latches": dict(self.latches),
            "area": dict(self.area),
            "delay": dict(self.delay),
            "verify_seconds": self.verify_seconds,
            "verify_verdict": (
                self.verify_verdict.value if self.verify_verdict else None
            ),
            "verify_reason": self.verify_reason,
            "verify_stats": dict(self.verify_stats),
            "notes": self.notes,
            "status": self.status,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FlowResult":
        """Inverse of :meth:`to_dict` (checkpoint resume)."""
        verdict = data.get("verify_verdict")
        return cls(
            name=str(data["name"]),
            latches_a=int(data.get("latches_a", 0)),
            pct_exposed=float(data.get("pct_exposed", 0.0)),
            latches={k: int(v) for k, v in dict(data.get("latches") or {}).items()},
            area={k: float(v) for k, v in dict(data.get("area") or {}).items()},
            delay={k: int(v) for k, v in dict(data.get("delay") or {}).items()},
            verify_seconds=float(data.get("verify_seconds", 0.0)),
            verify_verdict=SeqVerdict(verdict) if verdict else None,
            verify_reason=data.get("verify_reason") or None,
            verify_stats=dict(data.get("verify_stats") or {}),
            notes=str(data.get("notes", "")),
            status=str(data.get("status", "ok")),
            error=data.get("error") or None,
        )


def _measure(result: FlowResult, tag: str, circuit: Optional[Circuit]) -> None:
    if circuit is None:
        return
    mapped = tech_map(circuit)
    stats = mapped_stats(mapped)
    result.latches[tag] = circuit.num_latches()
    result.area[tag] = stats.area
    result.delay[tag] = stats.delay


def run_flow(
    circuit: Circuit,
    use_unateness: bool = False,
    effort: str = "medium",
    verify: bool = True,
    build_unexposed_variants: bool = True,
    n_jobs: int = 1,
    cec_cache=None,
    refine: bool = True,
    preprocess: bool = True,
    share_learned: bool = True,
    budget=None,
    tracer=None,
    metrics=None,
    engines=None,
    dispatch_policy="cascade",
) -> FlowResult:
    """Run the full Fig. 19 experiment on one circuit.

    ``use_unateness=False`` matches the paper's Table 1 setup (step 1 of
    Sec. 8: feedback latches were not remodelled as load-enabled because no
    retiming tool handled them); pass True to measure the reduced exposure
    the paper predicts from functional analysis.  ``n_jobs`` and
    ``cec_cache`` reach the CEC engine inside the verification step —
    a cache shared across rows (and across runs) skips already-proven
    merges of structurally recurring cones.  ``refine=False`` disables the
    engine's counterexample-guided refinement loop and ``preprocess=False``
    its pre-sweep AIG rewriting (the ``--no-refine`` / ``--no-preprocess``
    escape hatches); ``share_learned=False`` turns off learned-clause and
    assumption-core pooling in the sweep (``--no-share-learned``).
    ``budget`` (a
    :class:`repro.runtime.Budget` or bare seconds) resource-governs the
    verification step; exhaustion yields an UNKNOWN verdict with
    :attr:`FlowResult.verify_reason` set, never a hang.  ``tracer`` /
    ``metrics`` thread the observability sinks through the flow: the row
    gets a ``flow.row`` span enclosing exposure, synthesis, and the
    verification step's full span tree.  ``engines`` /
    ``dispatch_policy`` select the CEC engine-adapter portfolio for the
    verification step (see :func:`repro.cec.check_equivalence`); the
    defaults reproduce the historical cascade.
    """
    tracer = coerce_tracer(tracer)
    row_span = tracer.span("flow.row", cat="flow", circuit=circuit.name)
    try:
        return _run_flow(
            circuit,
            use_unateness,
            effort,
            verify,
            build_unexposed_variants,
            n_jobs,
            cec_cache,
            refine,
            preprocess,
            share_learned,
            budget,
            tracer,
            metrics,
            row_span,
            engines=engines,
            dispatch_policy=dispatch_policy,
        )
    finally:
        row_span.close()


def _run_flow(
    circuit: Circuit,
    use_unateness: bool,
    effort: str,
    verify: bool,
    build_unexposed_variants: bool,
    n_jobs: int,
    cec_cache,
    refine: bool,
    preprocess: bool,
    share_learned: bool,
    budget,
    tracer,
    metrics,
    row_span,
    engines=None,
    dispatch_policy="cascade",
) -> FlowResult:
    result = FlowResult(circuit.name)
    result.latches_a = circuit.num_latches()

    # Step 1: A -> B (expose the minimal feedback vertex set).  Exposed
    # latches stay physically present in the design (only frozen), so they
    # count towards the latch totals of B-derived circuits, as in Table 1.
    with tracer.span("flow.phase.expose", cat="phase"):
        prep = prepare_circuit(circuit, use_unateness=use_unateness)
    b_circuit = prep.circuit
    n_exposed = len(prep.exposed)
    result.pct_exposed = (
        100.0 * n_exposed / result.latches_a if result.latches_a else 0.0
    )
    result.latches["B"] = b_circuit.num_latches() + n_exposed

    # Step 3 first: D = combinational optimisation of A (baseline delay).
    opt_span = tracer.span("flow.phase.optimize", cat="phase")
    d_circuit = optimize_sequential_delay(circuit, effort, name=circuit.name + "_D")
    _measure(result, "D", d_circuit)
    d_depth = circuit_depth(d_circuit)

    # Step 2: C = synth(B) -> min-period retiming -> resynthesis.  Circuits
    # whose remodelled latches carry derived enables fall back to the
    # class-aware incremental retimer (the capability the paper lacked).
    c_circuit = optimize_sequential_delay(b_circuit, effort, name=circuit.name + "_C0")
    c_circuit = _retime_min_period_any(c_circuit, result)
    c_circuit = optimize_sequential_delay(c_circuit, effort, name=circuit.name + "_C")
    _measure(result, "C", c_circuit)
    result.latches["C"] = result.latches.get("C", 0) + n_exposed

    # Step 4: E = constrained min-area retiming of synth(B) at D's delay.
    e_base = optimize_sequential_delay(b_circuit, effort, name=circuit.name + "_E0")
    e_period = max(d_depth, 1)
    try:
        e_retimed, _ = retime_min_area(e_base, period=e_period)
    except ValueError:
        e_retimed = None
        result.notes += "E needs class-aware min-area (not available); "
    if e_retimed is None and "class-aware" in result.notes:
        pass
    elif e_retimed is None:
        # Infeasible at D's delay: relax to E0's own min period.
        from repro.retime.rgraph import build_retiming_graph
        from repro.retime.minperiod import min_period_retiming
        from repro.retime.apply import apply_retiming

        graph = build_retiming_graph(e_base)
        feas_period, _ = min_period_retiming(graph)
        e_retimed, _ = retime_min_area(e_base, period=max(feas_period, e_period))
        result.notes += "E relaxed; "
    e_circuit = (
        optimize_sequential_delay(e_retimed, effort, name=circuit.name + "_E")
        if e_retimed is not None
        else None
    )
    _measure(result, "E", e_circuit)
    if "E" in result.latches:
        result.latches["E"] += n_exposed

    # Steps 5-6: F and G on the unmodified A (optimisation-loss probes).
    if build_unexposed_variants:
        try:
            f_circuit = optimize_sequential_delay(
                circuit, effort, name=circuit.name + "_F0"
            )
            f_circuit, _, _ = retime_min_period(f_circuit)
            f_circuit = optimize_sequential_delay(
                f_circuit, effort, name=circuit.name + "_F"
            )
            _measure(result, "F", f_circuit)
        except ValueError as exc:
            result.notes += f"F skipped ({exc}); "
        try:
            g_base = optimize_sequential_delay(
                circuit, effort, name=circuit.name + "_G0"
            )
            g_retimed, _ = retime_min_area(g_base, period=max(d_depth, 1))
            if g_retimed is not None:
                _measure(result, "G", g_retimed)
            else:
                result.notes += "G infeasible; "
        except ValueError as exc:
            result.notes += f"G skipped ({exc}); "
    opt_span.close()

    # Steps 7-8: combinational verification of B vs C (H vs J), routed
    # through the stable facade (repro.api) like every other caller.
    if verify:
        report = verify_pair(
            VerifyRequest(
                golden=b_circuit,
                revised=c_circuit,
                name=circuit.name,
                jobs=n_jobs,
                cache=cec_cache,
                refine=refine,
                preprocess=preprocess,
                share_learned=share_learned,
                engines=engines,
                dispatch_policy=dispatch_policy,
            ),
            budget=budget,
            tracer=tracer,
            metrics=metrics,
        )
        result.verify_seconds = report.elapsed_seconds
        result.verify_verdict = SeqVerdict(report.verdict)
        result.verify_reason = report.reason
        result.verify_stats = dict(report.stats)
        row_span.annotate(
            verdict=report.verdict, verify_seconds=result.verify_seconds
        )
    return result
