"""Experiment orchestration reproducing the paper's evaluation (Sec. 8).

* :mod:`repro.flows.flow` — the Fig. 19 pipeline: expose (A→B), retime +
  resynthesise (B→C, B→E), combinational-only synthesis (A→D), unexposed
  variants (A→F, A→G), and combinational verification of B vs C (H vs J);
* :mod:`repro.flows.table1` — the Table 1 harness (fault-contained rows,
  per-row budgets, checkpoint/resume);
* :mod:`repro.flows.table2` — the Table 2 harness;
* :mod:`repro.flows.checkpoint` — atomic row-level run checkpoints;
* :mod:`repro.flows.report` — plain-text table rendering.
"""

from repro.flows.checkpoint import Checkpoint
from repro.flows.flow import FlowResult, run_flow
from repro.flows.table1 import run_table1, table1_row
from repro.flows.table2 import run_table2, table2_row

__all__ = [
    "Checkpoint",
    "FlowResult",
    "run_flow",
    "run_table1",
    "table1_row",
    "run_table2",
    "table2_row",
]
