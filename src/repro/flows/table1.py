"""Table 1 harness: sequential optimisation and verification results.

Regenerates the paper's Table 1 on the stand-in benchmark suite: per
circuit, the latch counts of A/F/C/E, the normalised areas (D = 1.00), the
mapped delays (column S), the percentage of latches exposed in B, and the
H-vs-J combinational verification time.

The harness is fault-tolerant: a row whose flow raises is recorded as an
ERROR row (``--on-error skip``, the default) instead of killing the run,
a per-row ``--time-limit`` turns runaway verifications into TIMEOUT rows,
every finished row is checkpointed immediately (``--checkpoint``), and an
interrupted run picks up where it left off with ``--resume``.

Run as a module for the full table::

    python -m repro.flows.table1 [--quick] [--unate] [--time-limit S]
                                 [--checkpoint FILE --resume]
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List, Optional, Sequence, Union

from repro.bench.iscas_like import TABLE1_CIRCUITS, build_table1_circuit
from repro.cec.cache import ProofCache
from repro.flows.checkpoint import Checkpoint
from repro.flows.flow import FlowResult, run_flow
from repro.flows.report import render_table, summarize_engine_stats
from repro.obs.console import Console
from repro.obs.trace import coerce_tracer
from repro.runtime.budget import REASON_TIMEOUT, Budget

__all__ = ["table1_row", "run_table1", "QUICK_SET"]

# Small-to-medium circuits that regenerate in seconds each.
QUICK_SET = [
    "minmax10",
    "minmax12",
    "s1196",
    "s1238",
    "s400",
    "s444",
    "s641",
    "s713",
    "s953",
    "s967",
]


def table1_row(
    name: str,
    use_unateness: bool = False,
    effort: str = "medium",
    n_jobs: int = 1,
    cec_cache=None,
    refine: bool = True,
    preprocess: bool = True,
    share_learned: bool = True,
    budget: Union[None, int, float, Budget] = None,
    tracer=None,
    metrics=None,
    engines=None,
    dispatch_policy="cascade",
) -> FlowResult:
    """Run the flow for one Table 1 circuit."""
    circuit = build_table1_circuit(name)
    return run_flow(
        circuit,
        use_unateness=use_unateness,
        effort=effort,
        n_jobs=n_jobs,
        cec_cache=cec_cache,
        refine=refine,
        preprocess=preprocess,
        share_learned=share_learned,
        budget=budget,
        tracer=tracer,
        metrics=metrics,
        engines=engines,
        dispatch_policy=dispatch_policy,
    )


def _row_budget(
    time_limit: Optional[float], bdd_node_limit: Optional[int]
) -> Optional[Budget]:
    """A fresh per-row budget (deadlines are single-use, so never shared)."""
    if time_limit is None and bdd_node_limit is None:
        return None
    return Budget(wall_seconds=time_limit, bdd_nodes=bdd_node_limit)


def run_table1(
    names: Optional[Sequence[str]] = None,
    use_unateness: bool = False,
    effort: str = "medium",
    stream=None,
    n_jobs: int = 1,
    cec_cache=None,
    refine: bool = True,
    preprocess: bool = True,
    share_learned: bool = True,
    time_limit: Optional[float] = None,
    bdd_node_limit: Optional[int] = None,
    on_error: str = "skip",
    checkpoint=None,
    resume: bool = False,
    console: Optional[Console] = None,
    tracer=None,
    metrics=None,
    engines=None,
    dispatch_policy="cascade",
) -> List[FlowResult]:
    """Run the Table 1 harness and print the table.

    A ``cec_cache`` (path or :class:`repro.cec.ProofCache`) is shared by
    every row's verification step and flushed at the end, so a second run
    of the harness replays the proven merges instead of re-solving them.
    ``refine=False`` disables the CEC engine's counterexample-guided
    refinement loop and ``preprocess=False`` its pre-sweep AIG rewriting
    (the ``--no-refine`` / ``--no-preprocess`` escape hatches);
    ``share_learned=False`` turns off learned-clause and assumption-core
    pooling in the sweep (``--no-share-learned``).

    ``time_limit`` / ``bdd_node_limit`` build a fresh per-row
    :class:`~repro.runtime.Budget` for the verification step; a row whose
    budget runs dry is recorded with status ``"timeout"``.  ``on_error``
    selects the containment policy for a row whose flow raises:
    ``"skip"`` records an ERROR row and moves on, ``"abort"`` re-raises
    after flushing the checkpoint.  ``checkpoint`` (path or
    :class:`~repro.flows.checkpoint.Checkpoint`) records every finished
    row immediately; with ``resume=True`` already-recorded rows are
    replayed instead of recomputed.

    Output goes through a :class:`repro.obs.console.Console` — pass one
    to control ``--quiet`` / ``--verbose``; the legacy ``stream``
    argument still works (None keeps the harness silent).  ``tracer`` /
    ``metrics`` thread the observability sinks through every row's flow.
    """
    if on_error not in ("skip", "abort"):
        raise ValueError(f"on_error must be 'skip' or 'abort', got {on_error!r}")
    if console is None:
        console = Console.for_stream(stream)
    tracer = coerce_tracer(tracer)
    if names is None:
        names = [entry[0] for entry in TABLE1_CIRCUITS]
    cache = ProofCache.coerce(cec_cache)
    store: Optional[Checkpoint] = None
    recorded: Dict[str, dict] = {}
    if checkpoint is not None:
        config = {
            "harness": "table1",
            "unate": bool(use_unateness),
            "effort": effort,
        }
        store = (
            checkpoint
            if isinstance(checkpoint, Checkpoint)
            else Checkpoint(checkpoint, config)
        )
        if resume:
            recorded = store.load()
    results: List[FlowResult] = []
    run_span = tracer.span("flow.table1", cat="flow", rows=len(names))
    for name in names:
        if name in recorded:
            result = FlowResult.from_dict(recorded[name])
            console.info(f"  {name}: resumed from checkpoint")
            tracer.instant("flow.row.resumed", circuit=name)
            results.append(result)
            continue
        t0 = time.perf_counter()
        try:
            result = table1_row(
                name,
                use_unateness,
                effort,
                n_jobs,
                cache,
                refine=refine,
                preprocess=preprocess,
                share_learned=share_learned,
                budget=_row_budget(time_limit, bdd_node_limit),
                tracer=tracer,
                metrics=metrics,
                engines=engines,
                dispatch_policy=dispatch_policy,
            )
            if result.verify_reason == REASON_TIMEOUT:
                result.status = "timeout"
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            if on_error == "abort":
                if cache is not None:
                    cache.save()
                run_span.close()
                raise
            result = FlowResult(name, status="error", error=repr(exc))
            result.notes = "row failed; "
            tracer.instant("flow.row.error", circuit=name, error=repr(exc))
        elapsed = time.perf_counter() - t0
        if result.status == "error":
            console.info(
                f"  {name}: ERROR after {elapsed:.1f}s ({result.error})"
            )
        else:
            verdict = (
                result.verify_verdict.value if result.verify_verdict else "-"
            )
            console.info(
                f"  {name}: flow {elapsed:.1f}s verify "
                f"{result.verify_seconds:.2f}s {verdict}"
            )
        results.append(result)
        if store is not None:
            store.record(name, result.to_dict())
    run_span.close()
    if cache is not None:
        cache.save()
    console.result(format_table1(results))
    console.result(summarize_engine_stats(r.verify_stats for r in results))
    return results


def _verdict_cell(result: FlowResult) -> str:
    if result.status == "error":
        return "ERROR"
    if result.status == "timeout":
        return "TIMEOUT"
    return result.verify_verdict.value if result.verify_verdict else "-"


def format_table1(results: Sequence[FlowResult]) -> str:
    """Render collected flow results as the Table 1 text."""
    headers = [
        "Circuit",
        "A:#L",
        "F:#L",
        "F:Area",
        "F:S",
        "%exp",
        "C:#L",
        "C:Area",
        "C:S",
        "D:Area",
        "D:S",
        "G:#L",
        "G:Area",
        "E:#L",
        "E:Area",
        "E:S",
        "Verify(s)",
        "Verdict",
    ]
    rows = []
    for r in results:
        rows.append(
            [
                r.name,
                r.latches_a,
                r.latches.get("F"),
                r.normalised_area("F"),
                r.delay.get("F"),
                round(r.pct_exposed),
                r.latches.get("C"),
                r.normalised_area("C"),
                r.delay.get("C"),
                1.00 if "D" in r.area else None,
                r.delay.get("D"),
                r.latches.get("G"),
                r.normalised_area("G"),
                r.latches.get("E"),
                r.normalised_area("E"),
                r.delay.get("E"),
                round(r.verify_seconds, 3),
                _verdict_cell(r),
            ]
        )
    return render_table(headers, rows, title="Table 1 — optimisation & verification")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.flows.table1`` entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="run only the fast subset"
    )
    parser.add_argument(
        "--unate",
        action="store_true",
        help="remodel positive-unate feedback latches instead of exposing them",
    )
    parser.add_argument("--circuits", nargs="*", help="explicit circuit names")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the CEC sweep (default 1: serial)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        help="persistent CEC proof-cache file shared across rows and runs",
    )
    parser.add_argument(
        "--no-refine",
        action="store_true",
        help="disable counterexample-guided refinement in the CEC sweep",
    )
    parser.add_argument(
        "--no-preprocess",
        action="store_true",
        help="disable pre-sweep AIG rewriting of the CEC miter",
    )
    parser.add_argument(
        "--no-share-learned",
        action="store_true",
        help="disable learned-clause and assumption-core pooling "
        "across sweep workers",
    )
    parser.add_argument(
        "--time-limit",
        type=float,
        default=None,
        metavar="S",
        help="per-row wall-clock budget for verification (seconds); "
        "exhaustion records a TIMEOUT row instead of hanging",
    )
    parser.add_argument(
        "--bdd-node-limit",
        type=int,
        default=None,
        metavar="N",
        help="live-node cap for the engine's bounded BDD attempts",
    )
    parser.add_argument(
        "--on-error",
        choices=("skip", "abort"),
        default="skip",
        help="a row whose flow raises: record an ERROR row and continue "
        "(skip, default) or stop the run (abort)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help="record every finished row into FILE (JSON, written atomically)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay rows already recorded in --checkpoint instead of "
        "recomputing them",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-row progress lines (the table still prints)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="extra diagnostics"
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a structured JSONL trace of the run (see repro profile)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the run's aggregated metrics registry as JSON",
    )
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint")
    if args.circuits:
        names = args.circuits
    elif args.quick:
        names = QUICK_SET
    else:
        names = [entry[0] for entry in TABLE1_CIRCUITS]
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer

    console = Console(quiet=args.quiet, verbose=args.verbose)
    tracer = (
        Tracer(path=args.trace, meta={"command": "table1", "rows": len(names)})
        if args.trace
        else None
    )
    registry = MetricsRegistry() if args.metrics_out else None
    try:
        run_table1(
            names,
            use_unateness=args.unate,
            n_jobs=args.jobs,
            cec_cache=args.cache,
            refine=not args.no_refine,
            preprocess=not args.no_preprocess,
            share_learned=not args.no_share_learned,
            time_limit=args.time_limit,
            bdd_node_limit=args.bdd_node_limit,
            on_error=args.on_error,
            checkpoint=args.checkpoint,
            resume=args.resume,
            console=console,
            tracer=tracer,
            metrics=registry,
        )
    finally:
        if tracer is not None:
            tracer.close()
        if registry is not None:
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(registry.to_json(indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
