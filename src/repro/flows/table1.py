"""Table 1 harness: sequential optimisation and verification results.

Regenerates the paper's Table 1 on the stand-in benchmark suite: per
circuit, the latch counts of A/F/C/E, the normalised areas (D = 1.00), the
mapped delays (column S), the percentage of latches exposed in B, and the
H-vs-J combinational verification time.

Run as a module for the full table::

    python -m repro.flows.table1 [--quick] [--unate]
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence, Tuple

from repro.bench.iscas_like import TABLE1_CIRCUITS, build_table1_circuit
from repro.cec.cache import ProofCache
from repro.flows.flow import FlowResult, run_flow
from repro.flows.report import render_table, summarize_engine_stats

__all__ = ["table1_row", "run_table1", "QUICK_SET"]

# Small-to-medium circuits that regenerate in seconds each.
QUICK_SET = [
    "minmax10",
    "minmax12",
    "s1196",
    "s1238",
    "s400",
    "s444",
    "s641",
    "s713",
    "s953",
    "s967",
]


def table1_row(
    name: str,
    use_unateness: bool = False,
    effort: str = "medium",
    n_jobs: int = 1,
    cec_cache=None,
) -> FlowResult:
    """Run the flow for one Table 1 circuit."""
    circuit = build_table1_circuit(name)
    return run_flow(
        circuit,
        use_unateness=use_unateness,
        effort=effort,
        n_jobs=n_jobs,
        cec_cache=cec_cache,
    )


def run_table1(
    names: Optional[Sequence[str]] = None,
    use_unateness: bool = False,
    effort: str = "medium",
    stream=None,
    n_jobs: int = 1,
    cec_cache=None,
) -> List[FlowResult]:
    """Run the Table 1 harness and print the table.

    A ``cec_cache`` (path or :class:`repro.cec.ProofCache`) is shared by
    every row's verification step and flushed at the end, so a second run
    of the harness replays the proven merges instead of re-solving them.
    """
    if names is None:
        names = [entry[0] for entry in TABLE1_CIRCUITS]
    cache = ProofCache.coerce(cec_cache)
    results: List[FlowResult] = []
    for name in names:
        t0 = time.perf_counter()
        result = table1_row(name, use_unateness, effort, n_jobs, cache)
        elapsed = time.perf_counter() - t0
        if stream is not None:
            print(
                f"  {name}: flow {elapsed:.1f}s verify "
                f"{result.verify_seconds:.2f}s {result.verify_verdict}",
                file=stream,
                flush=True,
            )
        results.append(result)
    if cache is not None:
        cache.save()
    if stream is not None:
        print(format_table1(results), file=stream)
        print(
            summarize_engine_stats(r.verify_stats for r in results),
            file=stream,
        )
    return results


def format_table1(results: Sequence[FlowResult]) -> str:
    """Render collected flow results as the Table 1 text."""
    headers = [
        "Circuit",
        "A:#L",
        "F:#L",
        "F:Area",
        "F:S",
        "%exp",
        "C:#L",
        "C:Area",
        "C:S",
        "D:Area",
        "D:S",
        "G:#L",
        "G:Area",
        "E:#L",
        "E:Area",
        "E:S",
        "Verify(s)",
        "Verdict",
    ]
    rows = []
    for r in results:
        rows.append(
            [
                r.name,
                r.latches_a,
                r.latches.get("F"),
                r.normalised_area("F"),
                r.delay.get("F"),
                round(r.pct_exposed),
                r.latches.get("C"),
                r.normalised_area("C"),
                r.delay.get("C"),
                1.00 if "D" in r.area else None,
                r.delay.get("D"),
                r.latches.get("G"),
                r.normalised_area("G"),
                r.latches.get("E"),
                r.normalised_area("E"),
                r.delay.get("E"),
                round(r.verify_seconds, 3),
                r.verify_verdict.value if r.verify_verdict else "-",
            ]
        )
    return render_table(headers, rows, title="Table 1 — optimisation & verification")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.flows.table1`` entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="run only the fast subset"
    )
    parser.add_argument(
        "--unate",
        action="store_true",
        help="remodel positive-unate feedback latches instead of exposing them",
    )
    parser.add_argument("--circuits", nargs="*", help="explicit circuit names")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the CEC sweep (default 1: serial)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        help="persistent CEC proof-cache file shared across rows and runs",
    )
    args = parser.parse_args(argv)
    if args.circuits:
        names = args.circuits
    elif args.quick:
        names = QUICK_SET
    else:
        names = [entry[0] for entry in TABLE1_CIRCUITS]
    run_table1(
        names,
        use_unateness=args.unate,
        stream=sys.stdout,
        n_jobs=args.jobs,
        cec_cache=args.cache,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
