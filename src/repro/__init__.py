"""repro — Using Combinational Verification for Sequential Circuits.

A full reproduction of Ranjan, Singhal, Somenzi & Brayton (UCB/ERL M97/77;
DATE 1999): sequential equivalence checking of retimed-and-resynthesised
circuits by reduction to combinational verification, together with every
substrate the paper's flow depends on — circuit model & BLIF I/O, a BDD
package, a CDCL SAT solver, an AIG-based combinational equivalence checker,
SIS-style combinational synthesis, Leiserson-Saxe / Minaret-style retiming,
simulators, and the benchmark/experiment harnesses regenerating the paper's
Tables 1 and 2.

Quickstart::

    from repro import CircuitBuilder, check_sequential_equivalence
    from repro.retime import retime_min_period

    b = CircuitBuilder("toy")
    x, y = b.inputs("x", "y")
    b.output(b.latch(b.AND(x, y)), name="o")
    original = b.circuit

    retimed, old_period, new_period = retime_min_period(original)
    assert check_sequential_equivalence(original, retimed).equivalent
"""

from repro.netlist import (
    Circuit,
    CircuitBuilder,
    CircuitError,
    Gate,
    Latch,
    Sop,
    parse_blif,
    parse_blif_file,
    validate_circuit,
    write_blif,
)
from repro.core import (
    CBF,
    EDBF,
    SeqCheckResult,
    SeqVerdict,
    check_sequential_equivalence,
    compute_cbf,
    compute_edbf,
    prepare_circuit,
    sequential_depth,
)
from repro.cec import CecVerdict, CheckResult, check_equivalence
from repro.api import (
    EXIT_EQUIVALENT,
    EXIT_NOT_EQUIVALENT,
    EXIT_UNKNOWN,
    VerificationResult,
    VerifyReport,
    VerifyRequest,
    exit_code_for_verdict,
    verify_batch,
    verify_pair,
)

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "CircuitError",
    "Gate",
    "Latch",
    "Sop",
    "parse_blif",
    "parse_blif_file",
    "write_blif",
    "validate_circuit",
    "CBF",
    "EDBF",
    "SeqCheckResult",
    "SeqVerdict",
    "check_sequential_equivalence",
    "compute_cbf",
    "compute_edbf",
    "prepare_circuit",
    "sequential_depth",
    "CecVerdict",
    "CheckResult",
    "check_equivalence",
    "EXIT_EQUIVALENT",
    "EXIT_NOT_EQUIVALENT",
    "EXIT_UNKNOWN",
    "VerificationResult",
    "VerifyReport",
    "VerifyRequest",
    "exit_code_for_verdict",
    "verify_batch",
    "verify_pair",
    "__version__",
]
