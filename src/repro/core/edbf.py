"""Event-Driven Boolean Functions (paper Sec. 4.2 and 5.2).

The EDBF of an output of an acyclic sequential circuit with load-enabled
latches is a Boolean function over variables ``(input, event)``: the value
of the input at the time instant ``η(event)``.  The computation follows
Fig. 8 of the paper:

* a gate composes its fanins' EDBFs at the same event;
* a latch with data ``y`` and enable ``e`` maps ``F(x, E)`` to
  ``F(y, [p_e] + E)`` where ``p_e`` is the *predicate* of ``e`` — the EDBF
  of the enable as a function of an arbitrary scan time (computed at the
  empty event), canonicalised so that resynthesised enables still match;
* a regular latch contributes the constant-true predicate (a unit delay);
* a primary input becomes the variable ``(input, E)``.

Theorem 5.2: for two circuits related by retiming (class-aware, à la Legl)
and combinational resynthesis, EDBF equality is equivalent to sequential
equivalence.  For arbitrary equivalent pairs the check is conservative —
see Figs. 10 and 11 — which the verifier surfaces as INCONCLUSIVE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.events import EMPTY_EVENT, EventContext
from repro.core.timedvar import CONST0, CONST1, ExprTable
from repro.netlist.circuit import Circuit

__all__ = ["EDBF", "compute_edbf", "EventVar", "edbf_eval_on_trace"]

# An EDBF variable: primary input `name` at time η(event).
EventVar = Tuple[str, str, int]  # ("e", input name, event id)


def event_var(name: str, event_id: int) -> EventVar:
    """The EDBF variable key for ``name`` at event ``event_id``."""
    return ("e", name, event_id)


@dataclass
class EDBF:
    """Output EDBFs sharing one expression table and event context."""

    context: EventContext
    outputs: Dict[str, int]
    circuit_name: str = ""

    @property
    def table(self) -> ExprTable:
        """The shared expression table."""
        return self.context.table

    def variables(self) -> Set[EventVar]:
        """All evented variables in the outputs' support."""
        out: Set[EventVar] = set()
        for node in self.outputs.values():
            out |= self.table.support(node)
        return out

    def events_used(self) -> Set[int]:
        """Ids of events appearing in the variable support."""
        return {key[2] for key in self.variables()}


def compute_edbf(
    circuit: Circuit,
    context: Optional[EventContext] = None,
) -> EDBF:
    """Compute the EDBF of every primary output (algorithm of Fig. 8).

    The circuit must be acyclic at the latch level (no feedback); both
    regular and load-enabled latches are supported.  Pass a shared
    ``context`` to compute two circuits' EDBFs in one variable space.
    """
    from repro.netlist.graph import feedback_latches

    cyclic = feedback_latches(circuit)
    if cyclic:
        raise ValueError(
            f"circuit has feedback latches {sorted(cyclic)[:5]}; "
            "expose latches or remodel feedback first"
        )
    circuit.topo_gates()  # raises on combinational cycles
    if context is None:
        context = EventContext()
    table = context.table

    memo: Dict[Tuple[str, int], int] = {}
    predicate_memo: Dict[str, int] = {}

    def compute(root_sig: str, root_event: int) -> int:
        stack: List[Tuple[str, int, bool]] = [(root_sig, root_event, False)]
        while stack:
            sig, event, expanded = stack.pop()
            key = (sig, event)
            if not expanded and key in memo:
                continue
            kind = circuit.driver_kind(sig)
            if kind == "input":
                memo[key] = table.var(event_var(sig, event))
            elif kind is None:
                raise ValueError(f"undriven signal {sig!r}")
            elif kind == "latch":
                latch = circuit.latches[sig]
                predicate = _predicate_of(latch.enable)
                child_event = context.prepend(predicate, event)
                child_key = (latch.data, child_event)
                if expanded:
                    memo[key] = memo[child_key]
                else:
                    stack.append((sig, event, True))
                    if child_key not in memo:
                        stack.append((latch.data, child_event, False))
            else:  # gate
                gate = circuit.gates[sig]
                if expanded:
                    children = [memo[(s, event)] for s in gate.inputs]
                    memo[key] = table.apply(gate.sop, children)
                else:
                    stack.append((sig, event, True))
                    for s in gate.inputs:
                        if (s, event) not in memo:
                            stack.append((s, event, False))
        return memo[(root_sig, root_event)]

    def _predicate_of(enable: Optional[str]) -> int:
        if enable is None:
            return CONST1
        pred = predicate_memo.get(enable)
        if pred is None:
            pred = context.canonical_predicate(compute(enable, EMPTY_EVENT))
            predicate_memo[enable] = pred
        return pred

    outputs = {out: compute(out, EMPTY_EVENT) for out in circuit.outputs}
    return EDBF(context, outputs, circuit.name)


# ----------------------------------------------------------------------
# Trace oracle (used by tests): evaluate an EDBF against a concrete run.
# ----------------------------------------------------------------------
def edbf_eval_on_trace(
    edbf: EDBF,
    input_trace: Dict[str, Sequence[bool]],
    at_time: int,
) -> Dict[str, Optional[bool]]:
    """Evaluate each output EDBF at cycle ``at_time`` of a concrete trace.

    ``input_trace[name][t]`` is the value of input ``name`` at cycle ``t``.
    Returns ``None`` for an output whose value depends on a time before the
    trace began (η = -∞, i.e. a power-up-dependent value).

    This realises the η semantics directly and is the oracle the test suite
    uses to validate :func:`compute_edbf` against plain simulation.
    """
    ctx = edbf.context
    table = edbf.table

    eta_cache: Dict[Tuple[int, int], Optional[int]] = {}

    def eta(event_id: int, now: int) -> Optional[int]:
        key = (event_id, now)
        if key in eta_cache:
            return eta_cache[key]
        preds = ctx.predicates(event_id)
        if not preds:
            eta_cache[key] = now
            return now
        tail_event = ctx.intern(preds[1:])
        t_rest = eta(tail_event, now)
        result: Optional[int] = None
        if t_rest is not None:
            tau = t_rest - 1
            while tau >= 0:
                val = pred_value(preds[0], tau)
                if val is None:
                    result = None
                    break
                if val:
                    result = tau
                    break
                tau -= 1
        eta_cache[key] = result
        return result

    def pred_value(pred: int, now: int) -> Optional[bool]:
        return expr_value(pred, now)

    expr_cache: Dict[Tuple[int, int], Optional[bool]] = {}

    def expr_value(node: int, now: int) -> Optional[bool]:
        key = (node, now)
        if key in expr_cache:
            return expr_cache[key]
        kind = table.kind(node)
        if kind == "c":
            result: Optional[bool] = node == CONST1
        elif kind == "v":
            _, name, event_id = table.var_key(node)
            t = eta(event_id, now)
            if t is None or t >= len(input_trace[name]):
                result = None
            else:
                result = bool(input_trace[name][t])
        else:
            sop, children = table.op_parts(node)
            child_vals = [expr_value(c, now) for c in children]
            if any(v is None for v in child_vals):
                # Try definite evaluation: the cover may not depend on the
                # unknown child for this assignment.  Conservative: unknown.
                result = _eval_sop_partial(sop, child_vals)
            else:
                result = sop.eval_bool([bool(v) for v in child_vals])
        expr_cache[key] = result
        return result

    out: Dict[str, Optional[bool]] = {}
    for name, node in edbf.outputs.items():
        out[name] = expr_value(node, at_time)
    return out


def _eval_sop_partial(sop, child_vals: List[Optional[bool]]) -> Optional[bool]:
    """3-valued SOP evaluation: definite 0/1 if possible, else None."""
    any_unknown = False
    for cube in sop.cubes:
        cube_val: Optional[bool] = True
        for i, ch in enumerate(cube):
            if ch == "-":
                continue
            v = child_vals[i]
            if v is None:
                if cube_val is not False:
                    cube_val = None
            elif (ch == "1") != v:
                cube_val = False
                break
        if cube_val is True:
            return True
        if cube_val is None:
            any_unknown = True
    return None if any_unknown else False
