"""The paper's contribution: sequential-to-combinational reduction.

* :mod:`repro.core.timedvar` — hash-consed expression DAG over timed /
  evented input variables (the common representation of CBFs and EDBFs);
* :mod:`repro.core.cbf` — Clocked Boolean Functions (Sec. 4.1, Fig. 7);
* :mod:`repro.core.events` — events and the η machinery (Sec. 4.2) with the
  Eq. 5 rewrite rule;
* :mod:`repro.core.edbf` — Event-Driven Boolean Functions (Fig. 8);
* :mod:`repro.core.feedback` — positive-unate feedback remodelling
  (Sec. 6, Lemmas 6.1/6.2, Figs. 12-13);
* :mod:`repro.core.expose` — minimum-feedback-vertex-set latch exposure
  (Sec. 7.1, Fig. 15);
* :mod:`repro.core.eq2comb` — CBF/EDBF to combinational circuits
  (Sec. 7.4, Fig. 18);
* :mod:`repro.core.verify` — the top-level sequential equivalence check.
"""

from repro.core.timedvar import ExprTable
from repro.core.cbf import CBF, compute_cbf, sequential_depth
from repro.core.events import EventContext
from repro.core.edbf import EDBF, compute_edbf
from repro.core.eq2comb import cbf_to_circuit, edbf_to_circuit
from repro.core.feedback import (
    FeedbackAnalysis,
    analyze_feedback_latch,
    remodel_feedback_latches,
    unate_decomposition,
)
from repro.core.expose import choose_latches_to_expose, prepare_circuit
from repro.core.multiclock import MultiClockSpec, normalize_multiclock
from repro.core.report import render_report, write_report
from repro.core.verify import (
    SeqVerdict,
    SeqCheckResult,
    check_sequential_equivalence,
)

__all__ = [
    "ExprTable",
    "CBF",
    "compute_cbf",
    "sequential_depth",
    "EventContext",
    "EDBF",
    "compute_edbf",
    "cbf_to_circuit",
    "edbf_to_circuit",
    "FeedbackAnalysis",
    "analyze_feedback_latch",
    "remodel_feedback_latches",
    "unate_decomposition",
    "choose_latches_to_expose",
    "prepare_circuit",
    "MultiClockSpec",
    "normalize_multiclock",
    "render_report",
    "write_report",
    "SeqVerdict",
    "SeqCheckResult",
    "check_sequential_equivalence",
]
