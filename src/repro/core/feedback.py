"""Feedback-latch remodelling (paper Sec. 6, Figs. 12-14).

A latch ``x`` whose next-state function ``F`` depends on its own output has
a feedback path.  Lemma 6.1: ``F`` can be decomposed as ``F = e·d + ē·x``
(a MUX feeding the latch, Fig. 12) **iff** ``F`` is positive unate in ``x``.
The enable part is unique (``ē = Fx · ¬Fx̄``); any ``d`` with
``Fx̄ ≤ d ≤ Fx`` works (Eq. 6).  A latch fed by such a MUX is exactly a
load-enabled latch (Fig. 13), which removes the feedback edge and makes the
circuit amenable to the EDBF machinery.

Decomposition choice (Sec. 6 discussion):

* if a ``d`` with Boolean support disjoint from ``e``'s exists, it is unique
  (Lemma 6.2) — we detect this case by quantifying ``e``'s support out of
  the interval and take the canonical decomposition;
* otherwise we take the lower limit ``d = Fx̄`` (the paper's option (b)).

Both ``e`` and ``d`` are independent of ``x`` by construction, so the
rebuilt circuit is acyclic at this latch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bdd.bdd import BDD
from repro.bdd.synth import bdd_to_gates, sop_from_bdd
from repro.netlist.circuit import Circuit, Latch
from repro.netlist.graph import combinational_fanin_cone, self_loop_latches

__all__ = [
    "FeedbackAnalysis",
    "analyze_feedback_latch",
    "remodel_feedback_latches",
    "unate_decomposition",
    "next_state_bdd",
]


@dataclass
class FeedbackAnalysis:
    """Result of analysing one self-loop latch."""

    latch: str
    positive_unate: bool
    enable_bdd: Optional[int] = None
    data_bdd: Optional[int] = None
    canonical: bool = False  # disjoint-support decomposition found
    manager: Optional[BDD] = None


def next_state_bdd(
    circuit: Circuit, latch_name: str, manager: Optional[BDD] = None
) -> Tuple[BDD, int]:
    """BDD of a latch's next-state function over PIs and latch outputs.

    For a load-enabled latch the *effective* next-state function
    ``e·data + ē·x`` is returned, so the unateness test covers Fig. 14-style
    conditional-update structures uniformly.
    """
    if manager is None:
        manager = BDD()
    latch = circuit.latches[latch_name]
    roots = [latch.data] + ([latch.enable] if latch.enable is not None else [])
    cone = combinational_fanin_cone(circuit, roots)
    nodes: Dict[str, int] = {}

    # Leaves of the cone (PIs and latch outputs) become variables, ordered
    # depth-first for a reasonable static order.
    def leaf_order() -> List[str]:
        order: List[str] = []
        seen: Set[str] = set()
        stack = list(roots)
        while stack:
            sig = stack.pop()
            if sig in seen:
                continue
            seen.add(sig)
            if sig in circuit.gates:
                stack.extend(reversed(circuit.gates[sig].inputs))
            elif sig not in order:
                order.append(sig)
        return order

    for leaf in leaf_order():
        nodes[leaf] = manager.add_var(leaf)
    for gate in circuit.topo_gates():
        if gate.output not in cone:
            continue
        fanins = [nodes[s] for s in gate.inputs]
        nodes[gate.output] = manager.from_sop(gate.sop, fanins)
    data = nodes[latch.data]
    if latch.enable is None:
        return manager, data
    enable = nodes[latch.enable]
    x = manager.add_var(latch_name)
    return manager, manager.ite(enable, data, x)


def unate_decomposition(
    manager: BDD, f: int, x_name: str
) -> Optional[Tuple[int, int, bool]]:
    """Lemma 6.1/6.2 decomposition of ``F`` w.r.t. latch variable ``x``.

    Returns ``(e, d, canonical)`` with ``F = e·d + ē·x``, or ``None`` when
    ``F`` is not positive unate in ``x``.  ``canonical`` is True when ``d``
    has support disjoint from ``e`` (the unique decomposition of Lemma 6.2).
    """
    f0 = manager.cofactor(f, x_name, False)  # Fx̄ = B
    f1 = manager.cofactor(f, x_name, True)  # Fx = A + B
    if not manager.implies(f0, f1):
        return None  # not positive unate
    # ē = Fx · ¬Fx̄  (unique);  e = ¬Fx + Fx̄.
    e = manager.apply_or(manager.apply_not(f1), f0)
    # Try the canonical disjoint-support d: quantify e's support out of the
    # interval [Fx̄, Fx].  d must satisfy Fx̄ ≤ d ≤ Fx.
    e_support = manager.support(e)
    d_lower = manager.exists(f0, e_support)
    d_upper = manager.forall(f1, e_support)
    canonical = False
    if manager.implies(d_lower, d_upper):
        # Any function in [d_lower, d_upper] has support disjoint from e's
        # support; take the lower bound as the representative.  Verify it is
        # still inside the original interval (it is by construction:
        # Fx̄ ≤ ∃S.Fx̄ and ∀S.Fx ≤ Fx).
        d = d_lower
        if manager.implies(f0, d) and manager.implies(d, f1):
            canonical = True
        else:  # pragma: no cover - defensive
            d = f0
    else:
        d = f0  # paper option (b): lower limit d = Fx̄
    # Sanity: F == e·d + ē·x.
    x = manager.var(x_name)
    rebuilt = manager.apply_or(
        manager.apply_and(e, d),
        manager.apply_and(manager.apply_not(e), x),
    )
    if rebuilt != f:
        raise AssertionError("decomposition failed to rebuild F")
    return e, d, canonical


def analyze_feedback_latch(
    circuit: Circuit, latch_name: str, manager: Optional[BDD] = None
) -> FeedbackAnalysis:
    """Check the paper's feedback condition for one self-loop latch."""
    manager, f = next_state_bdd(circuit, latch_name, manager)
    if latch_name not in manager.support(f):
        # No true dependence on itself: trivially fine (enable = 1).
        return FeedbackAnalysis(
            latch_name, True, manager.ONE, f, True, manager
        )
    decomp = unate_decomposition(manager, f, latch_name)
    if decomp is None:
        return FeedbackAnalysis(latch_name, False, manager=manager)
    e, d, canonical = decomp
    return FeedbackAnalysis(latch_name, True, e, d, canonical, manager)


def remodel_feedback_latches(
    circuit: Circuit,
    latches: Optional[Sequence[str]] = None,
) -> Tuple[Circuit, List[str], List[str]]:
    """Re-model self-loop latches as load-enabled latches (Figs. 12-13).

    Tries every latch in ``latches`` (default: all self-loop latches whose
    cycle is only through themselves).  Returns ``(new_circuit, remodelled,
    failed)`` where ``failed`` lists latches that are not positive unate and
    must be exposed instead.

    The new enable/data cones are synthesised from the decomposition BDDs
    (single-SOP gates when small, MUX trees otherwise).
    """
    if latches is None:
        latches = sorted(self_loop_latches(circuit))
    result = circuit.copy(circuit.name + "_remodel")
    remodelled: List[str] = []
    failed: List[str] = []
    for name in latches:
        analysis = analyze_feedback_latch(result, name)
        if not analysis.positive_unate:
            failed.append(name)
            continue
        manager = analysis.manager
        assert manager is not None
        assert analysis.enable_bdd is not None and analysis.data_bdd is not None
        e_sig = _materialize(manager, analysis.enable_bdd, result, f"__fb_en_{name}")
        d_sig = _materialize(manager, analysis.data_bdd, result, f"__fb_d_{name}")
        old = result.latches[name]
        if old.enable is not None:
            # Already enabled (Fig. 14 conditional update): the effective
            # next-state decomposition replaces both enable and data.
            result.replace_latch(Latch(name, d_sig, e_sig))
        else:
            result.replace_latch(Latch(name, d_sig, e_sig))
        remodelled.append(name)
    return result, remodelled, failed


def _materialize(manager: BDD, f: int, circuit: Circuit, base: str) -> str:
    """Emit the BDD as logic in the circuit; returns the output signal."""
    support = sorted(manager.support(f), key=manager.level_of)
    extraction = sop_from_bdd(manager, f, support)
    if extraction is not None:
        sop, fanins = extraction
        sig = circuit.fresh_signal(base)
        circuit.add_gate(sig, fanins, sop)
        return sig
    return bdd_to_gates(manager, f, circuit, base)
