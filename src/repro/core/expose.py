"""Choosing and exposing latches to break feedback (paper Sec. 7.1, Fig. 15).

The latch dependency graph is cyclic in general.  Latches whose only cycle
is a self-loop can often be remodelled as load-enabled latches (Sec. 6);
the rest must be *exposed* — their position frozen and their boundary made
observable — until the remaining graph is acyclic.  Choosing the fewest
such latches is the minimum feedback vertex set problem (NP-complete); we
use a Lee-Reddy-style greedy heuristic [22]:

1. repeatedly delete trivial nodes (no in- or out-edges inside cycles);
2. self-loop nodes must be chosen (they are in every FVS of their loop)
   unless unate remodelling removed the loop;
3. otherwise pick the node with the largest ``indegree × outdegree`` inside
   the current strongly connected components, add it to the FVS, delete it,
   and iterate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.core.feedback import analyze_feedback_latch, remodel_feedback_latches
from repro.netlist.circuit import Circuit
from repro.netlist.graph import latch_dependency_graph
from repro.netlist.transform import ExposedCircuit, expose_latches

__all__ = [
    "minimum_feedback_vertex_set",
    "choose_latches_to_expose",
    "prepare_circuit",
    "PreparedCircuit",
]


def minimum_feedback_vertex_set(
    graph: "nx.DiGraph",
    weight: Optional[Dict[str, float]] = None,
) -> Set[str]:
    """Greedy FVS heuristic; returned nodes break every directed cycle.

    Without ``weight`` the classic Lee-Reddy score (in·out degree) picks
    the next vertex.  With ``weight`` (an exposure *penalty* per node — the
    paper's future-work refinement, Sec. 9) the score is degree-product
    divided by penalty, so cheap-to-expose latches are preferred when they
    cut comparably many cycles.
    """
    g = graph.copy()
    fvs: Set[str] = set()
    # Self-loops first: each is unavoidable.
    for node in list(g.nodes):
        if g.has_edge(node, node):
            fvs.add(node)
            g.remove_node(node)

    def score(n: str) -> float:
        base = g.in_degree(n) * g.out_degree(n)
        if weight is None:
            return float(base)
        return base / max(weight.get(n, 1.0), 1e-9)

    while True:
        # Restrict attention to non-trivial SCCs.
        cyclic_nodes: Set[str] = set()
        for comp in nx.strongly_connected_components(g):
            if len(comp) > 1:
                cyclic_nodes |= comp
        if not cyclic_nodes:
            break
        best = max(cyclic_nodes, key=lambda n: (score(n), str(n)))
        fvs.add(best)
        g.remove_node(best)
        # New self-loops cannot appear (we removed nodes), but keep safe:
        for node in list(g.nodes):
            if g.has_edge(node, node):
                fvs.add(node)
                g.remove_node(node)
    return fvs


def exposure_penalties(circuit: Circuit) -> Dict[str, float]:
    """Heuristic optimisation penalty of exposing each latch.

    Exposing a latch freezes its position and cuts resynthesis across its
    boundary; a cheap proxy for the cost is the size of the combinational
    cone feeding the latch (bigger cone = more optimisation potential
    lost).  Used by the ``weighted`` exposure strategy (the paper's Sec. 9
    future-work item: pick latches whose exposure costs the least).
    """
    from repro.netlist.graph import combinational_fanin_cone

    penalties: Dict[str, float] = {}
    for latch in circuit.latches.values():
        roots = [latch.data] + (
            [latch.enable] if latch.enable is not None else []
        )
        cone = combinational_fanin_cone(circuit, roots)
        penalties[latch.output] = float(
            sum(1 for s in cone if s in circuit.gates)
        )
    return penalties


def choose_latches_to_expose(
    circuit: Circuit,
    use_unateness: bool = True,
    pinned: Sequence[str] = (),
    strategy: str = "count",
) -> Tuple[Set[str], Set[str]]:
    """Decide which latches to expose and which to remodel.

    Returns ``(to_expose, to_remodel)``.  ``pinned`` latches are treated as
    already observable (designers keep FSM state bits visible, Sec. 1) and
    never counted against the budget; their feedback edges are pre-broken.

    With ``use_unateness=True`` self-loop latches whose next-state function
    is positive unate in their own output are remodelled (Sec. 6) instead of
    exposed — the functional analysis the paper notes would "lead to reduced
    number of exposed latches" (Sec. 8, Table 2 discussion).

    ``strategy='count'`` minimises the *number* of exposed latches (the
    paper's experiment); ``strategy='weighted'`` minimises an estimated
    optimisation penalty instead (the paper's Sec. 9 future-work
    refinement), possibly exposing more but cheaper latches.
    """
    if strategy not in ("count", "weighted"):
        raise ValueError(f"unknown exposure strategy {strategy!r}")
    g = latch_dependency_graph(circuit)
    pinned_set = set(pinned)
    g.remove_nodes_from(pinned_set)

    to_remodel: Set[str] = set()
    if use_unateness:
        for node in list(g.nodes):
            if g.has_edge(node, node):
                analysis = analyze_feedback_latch(circuit, node)
                if analysis.positive_unate:
                    # Remodelling removes only the self-loop edge; paths
                    # through other latches remain.
                    g.remove_edge(node, node)
                    to_remodel.add(node)
    weights = exposure_penalties(circuit) if strategy == "weighted" else None
    to_expose = minimum_feedback_vertex_set(g, weight=weights)
    # A latch scheduled for remodel that the FVS still picked (it was on a
    # longer cycle) must be exposed instead.
    to_remodel -= to_expose
    return to_expose, to_remodel


@dataclass
class PreparedCircuit:
    """A circuit made acyclic for CBF/EDBF computation.

    ``circuit`` is acyclic at the latch level; ``exposed`` maps exposed
    latch names to their (pseudo input, pseudo output) ports; ``remodelled``
    lists latches converted to load-enabled form.
    """

    circuit: Circuit
    exposed: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    remodelled: List[str] = field(default_factory=list)

    @property
    def num_exposed(self) -> int:
        """How many latches were exposed."""
        return len(self.exposed)


def prepare_circuit(
    circuit: Circuit,
    use_unateness: bool = True,
    expose: Optional[Sequence[str]] = None,
    pinned: Sequence[str] = (),
) -> PreparedCircuit:
    """Make a circuit acyclic: remodel unate self-loops, expose the rest.

    ``expose`` forces a specific exposure set (used to apply the *same*
    modification to both circuits of a verification pair, as the paper's
    flow does by modifying circuit A into B before synthesis).  ``pinned``
    latches are exposed unconditionally (designer-visible state bits).
    """
    if expose is not None:
        to_expose = set(expose) | set(pinned)
        _, to_remodel = choose_latches_to_expose(
            circuit, use_unateness, pinned=list(to_expose)
        )
    else:
        to_expose, to_remodel = choose_latches_to_expose(
            circuit, use_unateness, pinned=()
        )
        to_expose |= set(pinned)
        to_expose -= to_remodel
    work = circuit
    remodelled: List[str] = []
    if to_remodel:
        work, remodelled, failed = remodel_feedback_latches(
            work, sorted(to_remodel)
        )
        to_expose |= set(failed)
    exposed_result: ExposedCircuit = expose_latches(work, sorted(to_expose))
    from repro.netlist.graph import feedback_latches

    leftover = feedback_latches(exposed_result.circuit)
    if leftover:
        # The FVS heuristic works on the latch graph before remodelling;
        # remodelling introduces no new cycles, so this should not happen.
        extra = expose_latches(exposed_result.circuit, sorted(leftover))
        exposed_result = ExposedCircuit(
            extra.circuit, {**exposed_result.exposed, **extra.exposed}
        )
    return PreparedCircuit(
        exposed_result.circuit, exposed_result.exposed, remodelled
    )
