"""Top-level sequential equivalence checking via combinational reduction.

The flow of the paper:

1. classify both circuits (combinational / acyclic-regular / acyclic-enabled
   / feedback);
2. if there is feedback, prepare both circuits identically: remodel positive
   unate self-loops, expose the same latch set (chosen on the first circuit,
   applied by name to both — the paper's flow modifies circuit A to B and
   synthesises B, so latch names of the exposed set survive);
3. compute CBFs (regular latches) or EDBFs (enabled latches) in a shared
   expression space;
4. quick filter: sequential depths must match (Lemma 5.1);
5. lower to combinational circuits (Sec. 7.4) and run the CEC engine;
6. CBF verdicts are exact (Theorem 5.1): counterexamples are lifted back to
   concrete input sequences and re-validated by exact-3-valued simulation.
   EDBF mismatches are *conservative* (Sec. 5.2) — unless the lifted trace
   actually distinguishes the circuits, the verdict is INCONCLUSIVE.
"""

from __future__ import annotations

import enum
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.cec.engine import CecVerdict, check_equivalence
from repro.core.cbf import CBF, compute_cbf
from repro.core.edbf import EDBF, compute_edbf
from repro.core.eq2comb import cbf_to_circuit, edbf_to_circuit
from repro.core.events import EventContext
from repro.core.expose import PreparedCircuit, prepare_circuit
from repro.core.timedvar import ExprTable
from repro.netlist.circuit import Circuit
from repro.netlist.graph import feedback_latches
from repro.obs.trace import coerce_tracer
from repro.sim.exact3 import BOT, exact3_outputs

__all__ = [
    "SeqVerdict",
    "SeqCheckResult",
    "check_sequential_equivalence",
    "minimize_counterexample",
]


class SeqVerdict(enum.Enum):
    EQUIVALENT = "equivalent"
    NOT_EQUIVALENT = "not_equivalent"
    INCONCLUSIVE = "inconclusive"  # conservative EDBF mismatch (Figs. 10-11)
    UNKNOWN = "unknown"  # resource limits


@dataclass
class SeqCheckResult:
    """Outcome of a sequential equivalence check.

    ``reason`` carries the machine-readable cause of an UNKNOWN verdict
    (a ``REASON_*`` code from :mod:`repro.runtime.budget`, e.g.
    ``"timeout"`` or ``"bdd-blowup"``); it is None for decided verdicts.

    Implements the common verification-result protocol
    (:class:`repro.api.VerificationResult`): ``verdict`` / ``reason`` /
    ``stats`` / ``counterexample`` / ``failing_output`` / ``equivalent`` /
    :meth:`as_dict`, shared with :class:`repro.cec.CheckResult`.
    """

    verdict: SeqVerdict
    method: str = ""
    counterexample: Optional[List[Dict[str, bool]]] = None
    failing_output: Optional[str] = None
    stats: Dict[str, float] = field(default_factory=dict)
    reason: Optional[str] = None

    @property
    def equivalent(self) -> bool:
        """True when the verdict is EQUIVALENT."""
        return self.verdict is SeqVerdict.EQUIVALENT

    def __bool__(self) -> bool:
        return self.equivalent

    def as_dict(self) -> Dict[str, object]:
        """Canonical JSON-able form: the one key set every result type uses.

        The keys are exactly ``repro.api.RESULT_KEYS`` — ``verdict`` (the
        enum's string value), ``method``, ``reason``, ``counterexample``
        (here a list of per-cycle input dicts), ``failing_output`` and
        ``stats``.
        """
        return {
            "verdict": self.verdict.value,
            "method": self.method,
            "reason": self.reason,
            "counterexample": (
                [dict(v) for v in self.counterexample]
                if self.counterexample is not None
                else None
            ),
            "failing_output": self.failing_output,
            "stats": dict(self.stats),
        }


def _classify(circuit: Circuit) -> str:
    if not circuit.latches:
        return "combinational"
    if feedback_latches(circuit):
        return "feedback"
    if any(l.enable is not None for l in circuit.latches.values()):
        return "acyclic-enabled"
    return "acyclic-regular"


#: Sentinel distinguishing "not passed" from an explicit None for the
#: deprecated ``cec_cache=`` alias below.
_UNSET = object()


def check_sequential_equivalence(
    c1: Circuit,
    c2: Circuit,
    prepare: bool = True,
    use_unateness: bool = True,
    event_rewrite: bool = False,
    validate_cex: bool = True,
    pinned: Sequence[str] = (),
    n_jobs: int = 1,
    cache=None,
    refine: bool = True,
    preprocess: bool = True,
    share_learned: bool = True,
    budget=None,
    tracer=None,
    metrics=None,
    cec_cache=_UNSET,
    engines=None,
    dispatch_policy="cascade",
    dispatch_store=None,
) -> SeqCheckResult:
    """Check exact-3-valued sequential equivalence of two circuits.

    ``prepare=True`` applies the paper's feedback handling automatically
    when needed (exposing the same latch names in both circuits — this
    assumes the synthesis flow preserved exposed-latch names, which
    :mod:`repro.flows` guarantees).  ``event_rewrite`` enables the Eq. 5
    canonicalisation (opt-in; see :mod:`repro.core.events` for why it is
    tied to the transparent-enable reading).  ``validate_cex`` replays CBF
    counterexamples through exact-3-valued simulation as a
    defence-in-depth check.  ``n_jobs`` and ``cache`` (a
    :class:`repro.cec.ProofCache` or a path) are forwarded to the CEC
    engine: parallel SAT sweeping and the persistent proof cache —
    ``cache`` is the same kwarg name :func:`repro.cec.check_equivalence`
    uses; the old ``cec_cache=`` spelling still works but emits a
    :class:`DeprecationWarning`.  ``refine`` (default on) enables the CEC
    sweep's counterexample-guided refinement loop — refuting SAT models
    become new simulation patterns that re-split the signature classes;
    pass False for the single-pass sweep.  ``preprocess`` (default on)
    rewrites the lowered miter AIG before sweeping — constant
    propagation, strashing, local two-level rewrites and dead-node
    elimination; semantics-preserving, so verdicts are unchanged.
    ``share_learned`` (default on) lets the CEC sweep pool
    quality-filtered learned clauses and assumption cores across
    parallel workers and the final output pass; pass False to isolate
    every solve (verdicts are unaffected either way).
    ``budget`` — a
    :class:`repro.runtime.Budget` or bare wall-clock
    seconds — resource-governs the CEC step; exhaustion yields verdict
    UNKNOWN with :attr:`SeqCheckResult.reason` set instead of a hang.
    ``tracer`` / ``metrics`` — a :class:`repro.obs.trace.Tracer` and a
    :class:`repro.obs.metrics.MetricsRegistry` — record the span tree
    (``seq.check`` → preparation/lowering phases → the CEC engine's own
    spans) and the full metric set; both default to no-ops.
    ``engines`` / ``dispatch_policy`` / ``dispatch_store`` select the CEC
    engine-adapter portfolio and how it is ordered per obligation (see
    :func:`repro.cec.check_equivalence`); the defaults reproduce the
    historical cascade bit for bit.

    Prefer calling through the stable facade :func:`repro.api.verify_pair`,
    which wraps this function behind one request/report pair of types.
    """
    if cec_cache is not _UNSET:
        warnings.warn(
            "check_sequential_equivalence(cec_cache=...) is deprecated; "
            "use cache=... (the same kwarg check_equivalence takes)",
            DeprecationWarning,
            stacklevel=2,
        )
        if cache is None:
            cache = cec_cache
    t0 = time.perf_counter()
    if set(c1.inputs) != set(c2.inputs):
        raise ValueError("circuits must have identical input names")
    if set(c1.outputs) != set(c2.outputs):
        raise ValueError("circuits must have identical output names")

    tracer = coerce_tracer(tracer)
    kind1, kind2 = _classify(c1), _classify(c2)
    stats: Dict[str, float] = {}
    root = tracer.span(
        "seq.check", cat="flow", c1=c1.name, c2=c2.name, kind1=kind1, kind2=kind2
    )
    try:
        if "feedback" in (kind1, kind2):
            if not prepare:
                raise ValueError(
                    "circuits have feedback latches; pass prepare=True or "
                    "prepare them explicitly with prepare_circuit()"
                )
            with tracer.span("seq.phase.prepare", cat="phase"):
                prep1 = prepare_circuit(
                    c1, use_unateness=use_unateness, pinned=pinned
                )
                shared_exposure = sorted(prep1.exposed)
                missing = [n for n in shared_exposure if n not in c2.latches]
                if missing:
                    raise ValueError(
                        f"cannot mirror exposure: latches {missing} absent in "
                        f"{c2.name!r}; expose compatible latch sets explicitly"
                    )
                prep2 = prepare_circuit(
                    c2, use_unateness=use_unateness, expose=shared_exposure
                )
            stats["exposed"] = len(prep1.exposed)
            stats["remodelled"] = len(prep1.remodelled)
            c1p, c2p = prep1.circuit, prep2.circuit
            kind1, kind2 = _classify(c1p), _classify(c2p)
        else:
            c1p, c2p = c1, c2

        enabled = "acyclic-enabled" in (kind1, kind2)
        if enabled:
            result = _check_via_edbf(
                c1p,
                c2p,
                event_rewrite,
                stats,
                n_jobs,
                cache,
                refine,
                preprocess,
                share_learned,
                budget,
                tracer,
                metrics,
                engines=engines,
                dispatch_policy=dispatch_policy,
                dispatch_store=dispatch_store,
            )
        else:
            result = _check_via_cbf(
                c1p,
                c2p,
                stats,
                validate_cex,
                c1,
                c2,
                n_jobs,
                cache,
                refine,
                preprocess,
                share_learned,
                budget,
                tracer,
                metrics,
                engines=engines,
                dispatch_policy=dispatch_policy,
                dispatch_store=dispatch_store,
            )
        result.stats["total_time"] = time.perf_counter() - t0
        root.annotate(verdict=result.verdict.value, method=result.method)
        if result.reason:
            root.annotate(reason=result.reason)
        return result
    finally:
        root.close()


def _check_via_cbf(
    c1: Circuit,
    c2: Circuit,
    stats: Dict[str, float],
    validate_cex: bool,
    orig1: Circuit,
    orig2: Circuit,
    n_jobs: int = 1,
    cache=None,
    refine: bool = True,
    preprocess: bool = True,
    share_learned: bool = True,
    budget=None,
    tracer=None,
    metrics=None,
    engines=None,
    dispatch_policy="cascade",
    dispatch_store=None,
) -> SeqCheckResult:
    tracer = coerce_tracer(tracer)
    with tracer.span("seq.phase.lower", cat="phase", method="cbf"):
        table = ExprTable()
        cbf1 = compute_cbf(c1, table)
        cbf2 = compute_cbf(c2, table)
        d1, d2 = cbf1.depth(), cbf2.depth()
        stats["depth1"], stats["depth2"] = d1, d2
        # Lemma 5.1 filter is on *semantic* depth; syntactic depths differ.
        all_vars = sorted(cbf1.variables() | cbf2.variables(), key=repr)
        comb1 = cbf_to_circuit(
            cbf1, name=c1.name + "_H", extra_inputs=all_vars
        )
        comb2 = cbf_to_circuit(
            cbf2, name=c2.name + "_J", extra_inputs=all_vars
        )
    stats["comb_gates1"] = comb1.num_gates()
    stats["comb_gates2"] = comb2.num_gates()
    cec = check_equivalence(
        comb1,
        comb2,
        n_jobs=n_jobs,
        cache=cache,
        refine=refine,
        preprocess=preprocess,
        share_learned=share_learned,
        budget=budget,
        tracer=tracer,
        metrics=metrics,
        engines=engines,
        dispatch_policy=dispatch_policy,
        dispatch_store=dispatch_store,
    )
    stats.update({f"cec_{k}": v for k, v in cec.stats.items()})
    if cec.verdict is CecVerdict.EQUIVALENT:
        return SeqCheckResult(SeqVerdict.EQUIVALENT, "cbf", stats=stats)
    if cec.verdict is CecVerdict.UNKNOWN:
        return SeqCheckResult(
            SeqVerdict.UNKNOWN, "cbf", stats=stats, reason=cec.reason
        )
    assert cec.counterexample is not None
    with tracer.span("seq.phase.lift_cex", cat="phase"):
        sequence = _lift_cbf_counterexample(
            cec.counterexample, max(d1, d2), set(orig1.inputs)
        )
        failing = cec.failing_output
        if failing is not None and failing.startswith("__out_"):
            failing = failing[len("__out_") :]
        if validate_cex:
            confirmed = _trace_distinguishes(orig1, orig2, sequence)
            stats["cex_confirmed"] = float(confirmed)
            # Theorem 5.1 says this must distinguish; if simulation cannot
            # confirm it (sampling limits on >16-latch circuits), the
            # verdict stands but the flag records it.
            if confirmed:
                sequence = minimize_counterexample(orig1, orig2, sequence)
    return SeqCheckResult(
        SeqVerdict.NOT_EQUIVALENT,
        "cbf",
        counterexample=sequence,
        failing_output=failing,
        stats=stats,
    )


def _lift_cbf_counterexample(
    cex: Mapping[str, bool], depth: int, input_names: Set[str]
) -> List[Dict[str, bool]]:
    """Turn a timed-variable assignment into an input sequence.

    Variable ``x@d`` is input ``x`` at ``t - d``; laying the sequence out
    over cycles ``0 .. depth`` puts the output observation at cycle
    ``depth`` (the last vector).
    """
    sequence = [
        {name: False for name in input_names} for _ in range(depth + 1)
    ]
    for var_name, value in cex.items():
        if "@" not in var_name:
            continue
        name, _, tag = var_name.rpartition("@")
        if tag.startswith("E"):
            continue
        d = int(tag)
        cycle = depth - d
        if 0 <= cycle <= depth and name in input_names:
            sequence[cycle][name] = bool(value)
    return sequence


def _trace_distinguishes(
    c1: Circuit, c2: Circuit, sequence: List[Dict[str, bool]]
) -> bool:
    """Do the circuits visibly differ on this input sequence (Def. 1)?"""
    o1 = exact3_outputs(c1, sequence)
    o2 = exact3_outputs(c2, sequence)
    for row1, row2 in zip(o1, o2):
        for out in c1.outputs:
            v1, v2 = row1[out], row2[out]
            if (v1 is BOT) != (v2 is BOT):
                return True
            if v1 is not BOT and v1 != v2:
                return True
    return False


def _check_via_edbf(
    c1: Circuit,
    c2: Circuit,
    event_rewrite: bool,
    stats: Dict[str, float],
    n_jobs: int = 1,
    cache=None,
    refine: bool = True,
    preprocess: bool = True,
    share_learned: bool = True,
    budget=None,
    tracer=None,
    metrics=None,
    engines=None,
    dispatch_policy="cascade",
    dispatch_store=None,
) -> SeqCheckResult:
    tracer = coerce_tracer(tracer)
    with tracer.span("seq.phase.lower", cat="phase", method="edbf"):
        context = EventContext(rewrite=event_rewrite)
        edbf1 = compute_edbf(c1, context)
        edbf2 = compute_edbf(c2, context)
        all_vars = sorted(edbf1.variables() | edbf2.variables(), key=repr)
        stats["events"] = context.num_events()
        comb1 = edbf_to_circuit(
            edbf1, name=c1.name + "_H", extra_inputs=all_vars
        )
        comb2 = edbf_to_circuit(
            edbf2, name=c2.name + "_J", extra_inputs=all_vars
        )
    stats["comb_gates1"] = comb1.num_gates()
    stats["comb_gates2"] = comb2.num_gates()
    cec = check_equivalence(
        comb1,
        comb2,
        n_jobs=n_jobs,
        cache=cache,
        refine=refine,
        preprocess=preprocess,
        share_learned=share_learned,
        budget=budget,
        tracer=tracer,
        metrics=metrics,
        engines=engines,
        dispatch_policy=dispatch_policy,
        dispatch_store=dispatch_store,
    )
    stats.update({f"cec_{k}": v for k, v in cec.stats.items()})
    if cec.verdict is CecVerdict.EQUIVALENT:
        return SeqCheckResult(SeqVerdict.EQUIVALENT, "edbf", stats=stats)
    if cec.verdict is CecVerdict.UNKNOWN:
        return SeqCheckResult(
            SeqVerdict.UNKNOWN, "edbf", stats=stats, reason=cec.reason
        )
    # EDBF inequality is conservative (Sec. 5.2).  Before reporting
    # INCONCLUSIVE, try to refute equivalence concretely: random input
    # sequences under exact-3-valued simulation.  A confirmed difference
    # upgrades the verdict to NOT_EQUIVALENT with a witness trace.
    failing = cec.failing_output
    if failing is not None and failing.startswith("__out_"):
        failing = failing[len("__out_") :]
    witness = _search_distinguishing_trace(c1, c2)
    if witness is not None:
        stats["cex_confirmed"] = 1.0
        witness = minimize_counterexample(c1, c2, witness)
        return SeqCheckResult(
            SeqVerdict.NOT_EQUIVALENT,
            "edbf",
            counterexample=witness,
            failing_output=failing,
            stats=stats,
        )
    return SeqCheckResult(
        SeqVerdict.INCONCLUSIVE,
        "edbf",
        failing_output=failing,
        stats=stats,
    )


def minimize_counterexample(
    c1: Circuit,
    c2: Circuit,
    sequence: List[Dict[str, bool]],
) -> List[Dict[str, bool]]:
    """Shrink a distinguishing input sequence (greedy delta debugging).

    Tries to (1) drop leading cycles and (2) set input bits to False,
    keeping every change that still distinguishes the circuits under
    exact-3-valued simulation.  Returns the (possibly unchanged) trace.
    """
    if not _trace_distinguishes(c1, c2, sequence):
        return sequence
    current = [dict(v) for v in sequence]
    # 1. trim leading cycles.
    while len(current) > 1 and _trace_distinguishes(c1, c2, current[1:]):
        current = current[1:]
    # 2. canonicalise bits to False where possible.
    for t in range(len(current)):
        for name in sorted(current[t]):
            if not current[t][name]:
                continue
            current[t][name] = False
            if not _trace_distinguishes(c1, c2, current):
                current[t][name] = True
    return current


def _search_distinguishing_trace(
    c1: Circuit, c2: Circuit, trials: int = 64, length: int = 8, seed: int = 7
) -> Optional[List[Dict[str, bool]]]:
    """Random search for a Def.-1-distinguishing input sequence."""
    import random

    rng = random.Random(seed)
    inputs = sorted(c1.inputs)
    for _ in range(trials):
        sequence = [
            {name: rng.random() < 0.5 for name in inputs}
            for _ in range(length)
        ]
        if _trace_distinguishes(c1, c2, sequence):
            return sequence
    return None
