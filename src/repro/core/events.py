"""Events and the η machinery (paper Sec. 4.2).

An *event* ``E = [p1, p2, ..., pn]`` is an ordered list of Boolean
predicates over time.  ``η(E)`` is the most recent time instant after which
all predicates fired in listed order; ``η([]) = t`` (now) and
``η([p] + rest) = max{ τ < η(rest) : p(τ) }`` — so the head predicate is the
*earliest* in the chain.  Descending from an output through a load-enabled
latch prepends that latch's enable predicate, which makes the head the
enable of the latch closest to the data source, exactly as in the paper's
Fig. 5 derivation (Eq. 1): ``z = u(η([e1, e2])) · v(η([e3]))``.

Regular latches are the special case of a constant-true predicate: a delay
of one cycle.  The CBF variable ``x(t-d)`` is the EDBF variable
``x(η([1]*d))``.

Predicates are represented by expression node ids (of the enable signal's
EDBF) in a shared :class:`~repro.core.timedvar.ExprTable`; hash-consing
makes structurally equal enables identical, and an optional semantic
canonicalisation (BDD-based) merges enables that synthesis restructured.

The rewrite rule (Eq. 5), ``p ≥ q ⟹ η[p, q, ...] = η[q, ...]``, drops a
head predicate that is implied by its successor.  The paper uses it to
remove false negatives such as Fig. 10.

**Reproduction finding** (documented in EXPERIMENTS.md): Eq. 5 is an exact
time-instant equality only under a *transparent-enable* reading of the
latch (the inner scan uses ``τ ≤ η(rest)``); under the strict
edge-triggered semantics our simulator implements (``s(t) = data(τ)`` with
``τ = max{τ ≤ t-1 : e(τ)}``), the merged events can denote different
instants.  We therefore ship the rule as an opt-in (``rewrite=True``, off
by default): with it, Fig-10-style pairs reconcile exactly as in the
paper; without it, the check stays sound for the strict semantics and the
verifier reports such pairs as INCONCLUSIVE — the same conservatism the
paper acknowledges for Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.timedvar import CONST0, CONST1, ExprTable

__all__ = ["EventContext", "EMPTY_EVENT"]

EMPTY_EVENT = 0


class EventContext:
    """Hash-consed events over a shared expression table.

    Events are immutable tuples of predicate node ids, interned to integer
    event ids.  Event id 0 is the empty event ("now").
    """

    def __init__(self, table: Optional[ExprTable] = None, rewrite: bool = False) -> None:
        self.table = table if table is not None else ExprTable()
        self.rewrite = rewrite
        self._events: List[Tuple[int, ...]] = [()]
        self._intern: Dict[Tuple[int, ...], int] = {(): EMPTY_EVENT}
        # Cache of proven predicate implications p -> q (node ids).
        self._implication_cache: Dict[Tuple[int, int], bool] = {}
        # Semantic canonicalisation of predicates: BDD key -> representative.
        self._canonical: Dict[int, int] = {}
        self._canonical_cache: Dict[int, int] = {}
        self._pred_manager = None  # lazily created shared BDD manager

    # ------------------------------------------------------------------
    def predicates(self, event_id: int) -> Tuple[int, ...]:
        """The interned predicate tuple of an event id."""
        return self._events[event_id]

    def num_events(self) -> int:
        """Number of interned events (including the empty one)."""
        return len(self._events)

    def intern(self, predicates: Tuple[int, ...]) -> int:
        """Intern a predicate tuple; returns its event id."""
        event_id = self._intern.get(predicates)
        if event_id is None:
            event_id = len(self._events)
            self._events.append(predicates)
            self._intern[predicates] = event_id
        return event_id

    def prepend(self, predicate: int, event_id: int) -> int:
        """The event ``[predicate] + E`` with canonicalisation applied."""
        preds = (predicate,) + self._events[event_id]
        if self.rewrite:
            preds = self._canonicalize(preds)
        return self.intern(preds)

    # ------------------------------------------------------------------
    # canonicalisation
    # ------------------------------------------------------------------
    def _canonicalize(self, preds: Tuple[int, ...]) -> Tuple[int, ...]:
        """Apply Eq. 5 repeatedly at the head of the list.

        Drops head predicate ``p`` when the following predicate ``q``
        implies it (``p ≥ q``), unless ``p`` is the constant-true delay
        predicate (dropping a pure delay would change timing).
        """
        preds = list(preds)
        changed = True
        while changed and len(preds) >= 2:
            changed = False
            p, q = preds[0], preds[1]
            if p == CONST1 or q == CONST1:
                break
            if p == q:
                break  # a repeated predicate is a genuine double event
            if self._implied(q, p):
                preds.pop(0)
                changed = True
        return tuple(preds)

    def _implied(self, antecedent: int, consequent: int) -> bool:
        """Does predicate ``antecedent`` imply ``consequent`` (semantically)?"""
        key = (antecedent, consequent)
        hit = self._implication_cache.get(key)
        if hit is not None:
            return hit
        if antecedent == consequent:
            result = True
        elif antecedent == CONST0 or consequent == CONST1:
            result = True
        else:
            result = self._bdd_implies(antecedent, consequent)
        self._implication_cache[key] = result
        return result

    def canonical_predicate(self, node: int) -> int:
        """A canonical representative of the predicate's semantic class.

        Two enable cones that compute the same function (even with
        different structure after resynthesis) map to the same
        representative, so the events built from them are identical.  Falls
        back to the structural node id when the support is too large to
        build a BDD.
        """
        hit = self._canonical_cache.get(node)
        if hit is not None:
            return hit
        support = self.table.support(node)
        if len(support) > 24:
            self._canonical_cache[node] = node
            return node
        if self._pred_manager is None:
            from repro.bdd.bdd import BDD

            self._pred_manager = BDD()
        manager = self._pred_manager
        (bdd_node,) = self.table.to_bdd([node], manager, lambda key: repr(key))
        representative = self._canonical.setdefault(bdd_node, node)
        self._canonical_cache[node] = representative
        return representative

    def _bdd_implies(self, a: int, b: int) -> bool:
        from repro.bdd.bdd import BDD

        support = self.table.support(a) | self.table.support(b)
        if len(support) > 24:
            return False  # give up: treat as not implied (conservative)
        manager = BDD()
        names = {key: f"v{i}" for i, key in enumerate(sorted(support, key=repr))}
        node_a, node_b = self.table.to_bdd(
            [a, b], manager, lambda key: names[key]
        )
        return manager.implies(node_a, node_b)

    # ------------------------------------------------------------------
    def describe(self, event_id: int) -> str:
        """Readable rendering of an event's predicate list."""
        preds = self._events[event_id]
        if not preds:
            return "[]"
        parts = []
        for p in preds:
            if p == CONST1:
                parts.append("1")
            elif self.table.kind(p) == "v":
                parts.append(str(self.table.var_key(p)))
            else:
                parts.append(f"#{p}")
        return "[" + ", ".join(parts) + "]"
