"""Hash-consed Boolean expression DAGs over timed/evented variables.

CBFs and EDBFs are Boolean functions whose variables are pairs of a primary
input and a *time tag* — an integer delay ``d`` for CBFs (the variable
``x(t-d)``) or an event id for EDBFs (the variable ``x(η(E))``).  This module
provides the shared representation: an :class:`ExprTable` of hash-consed
nodes (constants, variables, and SOP applications), with evaluation, support
computation, BDD lowering and basic constant-propagation simplification.

Sharing one table across two circuits makes structurally equal
sub-expressions literally identical node ids, which is what lets the
equivalence machinery name variables consistently on both sides.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.netlist.cube import Sop

__all__ = ["ExprTable", "CONST0", "CONST1"]

CONST0 = 0
CONST1 = 1

VarKey = Hashable


class ExprTable:
    """Hash-consed expression nodes.

    Node 0 is constant FALSE, node 1 constant TRUE.  Other nodes are either
    variables (``kind 'v'``, payload the variable key) or SOP applications
    (``kind 'op'``, payload ``(sop, child ids)``).
    """

    def __init__(self) -> None:
        self._kind: List[str] = ["c", "c"]
        self._payload: List = [False, True]
        self._var_cache: Dict[VarKey, int] = {}
        self._op_cache: Dict[Tuple[Sop, Tuple[int, ...]], int] = {}
        self._support_cache: Dict[int, FrozenSet[VarKey]] = {}

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    def var(self, key: VarKey) -> int:
        """Intern a variable node for ``key``."""
        node = self._var_cache.get(key)
        if node is None:
            node = len(self._kind)
            self._kind.append("v")
            self._payload.append(key)
            self._var_cache[key] = node
        return node

    def apply(self, sop: Sop, children: Sequence[int]) -> int:
        """Apply an SOP to child nodes, with light simplification."""
        if sop.ninputs != len(children):
            raise ValueError("arity mismatch in apply")
        # Constant-fold against constant children.
        const_assignment = {
            i: (child == CONST1)
            for i, child in enumerate(children)
            if child in (CONST0, CONST1)
        }
        if const_assignment:
            sop = sop.restrict(const_assignment)
            remaining = [
                (i, child)
                for i, child in enumerate(children)
                if i not in const_assignment
            ]
            # Drop the now-unused constant positions.
            for i in sorted(const_assignment, reverse=True):
                sop = sop.remove_input(i)
            children = [child for _, child in remaining]
        if sop.is_const0():
            return CONST0
        if sop.is_const1_syntactic():
            return CONST1
        if not children:
            # No inputs left but not syntactically constant: decide by eval.
            return CONST1 if sop.eval_bool([]) else CONST0
        # Drop children outside the (syntactic) support.
        support = sop.support()
        if len(support) < len(children):
            for i in range(len(children) - 1, -1, -1):
                if i not in support:
                    sop = sop.remove_input(i)
            children = [c for i, c in enumerate(children) if i in support]
            if not children:
                return CONST1 if sop.eval_bool([]) else CONST0
        # Identity collapse: single-input positive buffer.
        if (
            sop.ninputs == 1
            and len(sop.cubes) == 1
            and sop.cubes[0] == "1"
        ):
            return children[0]
        key = (sop, tuple(children))
        node = self._op_cache.get(key)
        if node is None:
            node = len(self._kind)
            self._kind.append("op")
            self._payload.append(key)
            self._op_cache[key] = node
        return node

    def not_(self, child: int) -> int:
        """Complement of a node."""
        if child == CONST0:
            return CONST1
        if child == CONST1:
            return CONST0
        return self.apply(Sop.and_all(1, [False]), [child])

    def and_(self, a: int, b: int) -> int:
        """Conjunction of two nodes."""
        return self.apply(Sop.and_all(2), [a, b])

    def or_(self, a: int, b: int) -> int:
        """Disjunction of two nodes."""
        return self.apply(Sop.or_all(2), [a, b])

    def xor_(self, a: int, b: int) -> int:
        """Exclusive-or of two nodes."""
        return self.apply(Sop.xor2(), [a, b])

    def mux(self, sel: int, then_node: int, else_node: int) -> int:
        """``sel ? then : else`` over nodes."""
        return self.apply(Sop.mux(), [sel, then_node, else_node])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def kind(self, node: int) -> str:
        """``'c' | 'v' | 'op'`` for a node."""
        return self._kind[node]

    def var_key(self, node: int) -> VarKey:
        """The variable key of a variable node."""
        if self._kind[node] != "v":
            raise ValueError(f"node {node} is not a variable")
        return self._payload[node]

    def op_parts(self, node: int) -> Tuple[Sop, Tuple[int, ...]]:
        """The (cover, children) payload of an operation node."""
        if self._kind[node] != "op":
            raise ValueError(f"node {node} is not an operation")
        return self._payload[node]

    def num_nodes(self) -> int:
        """Total interned node count."""
        return len(self._kind)

    def support(self, node: int) -> FrozenSet[VarKey]:
        """The set of variable keys the node (syntactically) depends on."""
        hit = self._support_cache.get(node)
        if hit is not None:
            return hit
        # Iterative post-order to avoid recursion limits.
        result: Dict[int, FrozenSet[VarKey]] = {}
        stack: List[Tuple[int, bool]] = [(node, False)]
        while stack:
            n, expanded = stack.pop()
            if n in result or n in self._support_cache:
                continue
            kind = self._kind[n]
            if kind == "c":
                result[n] = frozenset()
            elif kind == "v":
                result[n] = frozenset([self._payload[n]])
            else:
                _, children = self._payload[n]
                if expanded:
                    acc: Set[VarKey] = set()
                    for child in children:
                        child_support = self._support_cache.get(child)
                        if child_support is None:
                            child_support = result[child]
                        acc |= child_support
                    result[n] = frozenset(acc)
                else:
                    stack.append((n, True))
                    for child in children:
                        if child not in result and child not in self._support_cache:
                            stack.append((child, False))
        self._support_cache.update(result)
        return self._support_cache[node]

    def descendants(self, roots: Sequence[int]) -> List[int]:
        """All reachable nodes from ``roots`` in topological (child-first) order."""
        order: List[int] = []
        state: Dict[int, int] = {}
        stack: List[Tuple[int, bool]] = [(r, False) for r in roots]
        while stack:
            n, expanded = stack.pop()
            if expanded:
                if state.get(n) != 2:
                    state[n] = 2
                    order.append(n)
                continue
            if state.get(n):
                continue
            state[n] = 1
            stack.append((n, True))
            if self._kind[n] == "op":
                _, children = self._payload[n]
                for child in children:
                    if not state.get(child):
                        stack.append((child, False))
        return order

    # ------------------------------------------------------------------
    # evaluation / lowering
    # ------------------------------------------------------------------
    def eval(self, roots: Sequence[int], assignment: Dict[VarKey, bool]) -> List[bool]:
        """Evaluate several roots under a variable assignment."""
        values: Dict[int, bool] = {CONST0: False, CONST1: True}
        for n in self.descendants(roots):
            kind = self._kind[n]
            if kind == "c":
                values[n] = bool(self._payload[n])
            elif kind == "v":
                values[n] = bool(assignment[self._payload[n]])
            else:
                sop, children = self._payload[n]
                values[n] = sop.eval_bool([values[c] for c in children])
        return [values[r] for r in roots]

    def eval_parallel(
        self,
        roots: Sequence[int],
        assignment: Dict[VarKey, int],
        mask: int,
    ) -> List[int]:
        """Bit-parallel evaluation over words."""
        values: Dict[int, int] = {CONST0: 0, CONST1: mask}
        for n in self.descendants(roots):
            kind = self._kind[n]
            if kind == "c":
                values[n] = mask if self._payload[n] else 0
            elif kind == "v":
                values[n] = assignment[self._payload[n]] & mask
            else:
                sop, children = self._payload[n]
                values[n] = sop.eval_parallel([values[c] for c in children], mask)
        return [values[r] for r in roots]

    def to_bdd(
        self,
        roots: Sequence[int],
        manager,
        var_name: Callable[[VarKey], str],
    ) -> List[int]:
        """Lower roots to BDD nodes; ``var_name`` maps keys to BDD names."""
        values: Dict[int, int] = {
            CONST0: manager.ZERO,
            CONST1: manager.ONE,
        }
        for n in self.descendants(roots):
            kind = self._kind[n]
            if kind == "c":
                values[n] = manager.ONE if self._payload[n] else manager.ZERO
            elif kind == "v":
                values[n] = manager.add_var(var_name(self._payload[n]))
            else:
                sop, children = self._payload[n]
                values[n] = manager.from_sop(sop, [values[c] for c in children])
        return [values[r] for r in roots]
