"""Human-readable verification reports.

Turns a :class:`~repro.core.verify.SeqCheckResult` plus the two circuits
into a Markdown document: circuit inventories, the feedback preparation
summary, method and timing, the verdict, and (for failures) the minimised
counterexample as a waveform table.  The CLI exposes this via
``repro verify --report out.md``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.verify import SeqCheckResult, SeqVerdict
from repro.netlist.circuit import Circuit

__all__ = ["render_report", "write_report"]


def _circuit_section(title: str, circuit: Circuit) -> List[str]:
    stats = circuit.stats()
    classes = circuit.latch_classes()
    class_text = ", ".join(
        f"{'regular' if cls is None else cls}: {len(members)}"
        for cls, members in sorted(classes.items(), key=lambda kv: str(kv[0]))
    )
    return [
        f"### {title}: `{circuit.name}`",
        "",
        f"- inputs: {stats['inputs']}, outputs: {stats['outputs']}",
        f"- gates: {stats['gates']} ({stats['literals']} literals)",
        f"- latches: {stats['latches']}"
        + (f" ({class_text})" if stats["latches"] else ""),
        "",
    ]


_VERDICT_TEXT = {
    SeqVerdict.EQUIVALENT: (
        "**EQUIVALENT** — the circuits are sequentially equivalent; the "
        "proof is combinational (paper Theorems 5.1/5.2)."
    ),
    SeqVerdict.NOT_EQUIVALENT: (
        "**NOT EQUIVALENT** — a concrete distinguishing input sequence was "
        "found and validated by exact-3-valued simulation."
    ),
    SeqVerdict.INCONCLUSIVE: (
        "**INCONCLUSIVE** — the event-driven Boolean functions differ but "
        "no concrete distinguishing trace was found.  This is the method's "
        "documented conservatism for load-enabled latches outside the "
        "retiming+resynthesis class (paper Sec. 5.2, Figs. 10-11)."
    ),
    SeqVerdict.UNKNOWN: (
        "**UNKNOWN** — a resource limit stopped the combinational check."
    ),
}


def render_report(
    result: SeqCheckResult,
    golden: Circuit,
    revised: Circuit,
) -> str:
    """Render a Markdown verification report.

    Accepts any result shape that satisfies the
    :class:`repro.api.VerificationResult` protocol: ``result.verdict``
    may be the :class:`SeqVerdict` enum or its canonical string form
    (as on :class:`repro.api.VerifyReport`).
    """
    verdict = result.verdict
    if not isinstance(verdict, SeqVerdict):
        verdict = SeqVerdict(str(verdict))
    lines: List[str] = [
        "# Sequential equivalence report",
        "",
        _VERDICT_TEXT[verdict],
        "",
        f"- method: `{result.method or 'n/a'}`"
        + (" (CBF — exact)" if result.method == "cbf" else "")
        + (
            " (EDBF — exact for retiming+resynthesis pairs)"
            if result.method == "edbf"
            else ""
        ),
        f"- total time: {result.stats.get('total_time', 0.0):.3f}s",
        "",
        "## Circuits",
        "",
    ]
    lines += _circuit_section("Golden", golden)
    lines += _circuit_section("Revised", revised)

    prep_lines: List[str] = []
    if result.stats.get("exposed"):
        prep_lines.append(
            f"- latches exposed to break feedback: {int(result.stats['exposed'])}"
        )
    if result.stats.get("remodelled"):
        prep_lines.append(
            f"- positive-unate latches remodelled as load-enabled: "
            f"{int(result.stats['remodelled'])}"
        )
    if prep_lines:
        lines += ["## Feedback preparation (paper Secs. 6-7)", ""]
        lines += prep_lines + [""]

    lines += ["## Reduction statistics", ""]
    interesting = [
        ("depth1", "sequential depth (golden)"),
        ("depth2", "sequential depth (revised)"),
        ("events", "distinct events"),
        ("comb_gates1", "combinational circuit H gates"),
        ("comb_gates2", "combinational circuit J gates"),
        ("cec_aig_nodes", "shared-AIG nodes"),
        ("cec_sweep_merges", "internal equivalences proven"),
        ("cec_time", "CEC time (s)"),
    ]
    for key, label in interesting:
        if key in result.stats:
            value = result.stats[key]
            rendered = f"{value:.4f}" if isinstance(value, float) else str(value)
            lines.append(f"- {label}: {rendered}")
    lines.append("")

    if result.counterexample:
        lines += ["## Counterexample (minimised)", ""]
        inputs = sorted(result.counterexample[0])
        header = "| cycle | " + " | ".join(inputs) + " |"
        sep = "|---" * (len(inputs) + 1) + "|"
        lines += [header, sep]
        for t, vec in enumerate(result.counterexample):
            row = " | ".join(str(int(vec[name])) for name in inputs)
            lines.append(f"| {t} | {row} |")
        lines.append("")
        if result.failing_output:
            lines.append(
                f"The circuits differ on output `{result.failing_output}` "
                f"at the final cycle."
            )
            lines.append("")
    return "\n".join(lines)


def write_report(
    result: SeqCheckResult,
    golden: Circuit,
    revised: Circuit,
    path: Union[str, Path],
) -> str:
    """Render the report and write it to ``path``."""
    text = render_report(result, golden, revised)
    Path(path).write_text(text)
    return text
