"""Clocked Boolean Functions (paper Sec. 4.1 and 5.1).

The CBF of an output of an acyclic sequential circuit with regular latches
expresses its value at time ``t`` as a Boolean function of primary-input
values at times ``t, t-1, ..., t-d`` where ``d`` is the circuit's sequential
depth.  Input values at different time instants are independent variables.

The computation follows Fig. 7 of the paper: a memoised recursion over
``(signal, delay)`` pairs — gates compose their fanins at the same delay,
latches shift the delay by one, and primary inputs become timed variables.

Theorem 5.1: two acyclic regular-latch circuits are exact-3-valued
equivalent **iff** their CBFs are equal as Boolean functions.  This holds
for *any* equivalent pair, not just retiming/resynthesis ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.timedvar import CONST0, CONST1, ExprTable
from repro.netlist.circuit import Circuit

__all__ = ["CBF", "compute_cbf", "sequential_depth", "TimedVar", "topological_latch_depth"]

# A CBF variable: primary input `name` sampled `delay` cycles ago.
TimedVar = Tuple[str, str, int]  # ("t", input name, delay)


def timed_var(name: str, delay: int) -> TimedVar:
    """The CBF variable key for input ``name`` delayed by ``delay``."""
    return ("t", name, delay)


@dataclass
class CBF:
    """A set of output CBFs sharing one expression table."""

    table: ExprTable
    outputs: Dict[str, int]
    circuit_name: str = ""

    def depth(self) -> int:
        """Syntactic sequential depth: max delay in the variable support."""
        depth = 0
        for node in self.outputs.values():
            for key in self.table.support(node):
                depth = max(depth, key[2])
        return depth

    def variables(self) -> Set[TimedVar]:
        """All timed variables in the outputs' support."""
        out: Set[TimedVar] = set()
        for node in self.outputs.values():
            out |= self.table.support(node)
        return out


def compute_cbf(
    circuit: Circuit,
    table: Optional[ExprTable] = None,
) -> CBF:
    """Compute the CBF of every primary output (algorithm of Fig. 7).

    Requirements (checked): all latches regular (no load enables) and no
    latch lies on a feedback cycle — otherwise the recursion would not
    terminate, mirroring the paper's restriction to acyclic circuits.

    A shared ``table`` may be supplied so two circuits' CBFs live in one
    node space (variables ``(input, delay)`` then coincide by construction).
    """
    from repro.netlist.graph import feedback_latches

    for latch in circuit.latches.values():
        if latch.enable is not None:
            raise ValueError(
                f"latch {latch.output!r} is load-enabled; use compute_edbf"
            )
    cyclic = feedback_latches(circuit)
    if cyclic:
        raise ValueError(
            f"circuit has feedback latches {sorted(cyclic)[:5]}; "
            "expose latches or remodel feedback first"
        )
    if table is None:
        table = ExprTable()

    memo: Dict[Tuple[str, int], int] = {}

    def compute(root_sig: str, root_delay: int) -> int:
        stack: List[Tuple[str, int, bool]] = [(root_sig, root_delay, False)]
        while stack:
            sig, delay, expanded = stack.pop()
            key = (sig, delay)
            if not expanded and key in memo:
                continue
            kind = circuit.driver_kind(sig)
            if kind == "input":
                memo[key] = table.var(timed_var(sig, delay))
            elif kind is None:
                raise ValueError(f"undriven signal {sig!r}")
            elif kind == "latch":
                latch = circuit.latches[sig]
                child_key = (latch.data, delay + 1)
                if expanded:
                    memo[key] = memo[child_key]
                else:
                    stack.append((sig, delay, True))
                    if child_key not in memo:
                        stack.append((latch.data, delay + 1, False))
            else:  # gate (acyclicity guaranteed by topo_gates elsewhere)
                gate = circuit.gates[sig]
                if expanded:
                    children = [memo[(s, delay)] for s in gate.inputs]
                    memo[key] = table.apply(gate.sop, children)
                else:
                    stack.append((sig, delay, True))
                    for s in gate.inputs:
                        if (s, delay) not in memo:
                            stack.append((s, delay, False))
        return memo[(root_sig, root_delay)]

    circuit.topo_gates()  # raises on combinational cycles
    outputs = {out: compute(out, 0) for out in circuit.outputs}
    return CBF(table, outputs, circuit.name)


def topological_latch_depth(circuit: Circuit) -> int:
    """Max number of latches along any input-to-output path (Def. 4 remark)."""
    # Longest path in the (acyclic) signal graph counting latch edges.
    depth: Dict[str, int] = {}

    def get(sig: str, trail: Set[str]) -> int:
        if sig in depth:
            return depth[sig]
        if sig in trail:
            raise ValueError(f"feedback cycle through {sig!r}")
        trail.add(sig)
        kind = circuit.driver_kind(sig)
        if kind == "input" or kind is None:
            d = 0
        elif kind == "latch":
            d = get(circuit.latches[sig].data, trail) + 1
        else:
            gate = circuit.gates[sig]
            d = max((get(s, trail) for s in gate.inputs), default=0)
        trail.discard(sig)
        depth[sig] = d
        return d

    import sys

    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, 10000 + 4 * (len(circuit.gates) + len(circuit.latches))))
    try:
        return max((get(o, set()) for o in circuit.outputs), default=0)
    finally:
        sys.setrecursionlimit(old)


def sequential_depth(cbf: CBF, semantic: bool = True) -> int:
    """Sequential depth (Def. 4): the largest delay that truly matters.

    With ``semantic=True`` false dependencies are pruned by computing the
    BDD support of each output CBF; otherwise the syntactic support is used
    (equals the topological latch depth over true paths).
    """
    if not semantic:
        return cbf.depth()
    from repro.bdd.bdd import BDD

    manager = BDD()
    # Order variables by delay then name for a stable, shallow order.
    all_vars = sorted(cbf.variables(), key=lambda k: (k[2], k[1]))
    for key in all_vars:
        manager.add_var(_var_name(key))
    nodes = cbf.table.to_bdd(
        list(cbf.outputs.values()), manager, _var_name
    )
    depth = 0
    name_to_delay = {_var_name(k): k[2] for k in all_vars}
    for node in nodes:
        for name in manager.support(node):
            depth = max(depth, name_to_delay[name])
    return depth


def _var_name(key: TimedVar) -> str:
    return f"{key[1]}@{key[2]}"
