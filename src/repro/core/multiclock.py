"""Multiple-clock support (paper Sec. 5.2: "Extension to circuits with
multiple clocks is straightforward").

Following Legl et al. [9], a latch class in a multi-clock design is the
pair ``cl = (CLK, LE)``.  In a synchronous multi-rate abstraction every
clock is a *tick predicate* over one base clock: clock ``CLK`` ticks at a
cycle iff its tick input is 1.  A latch on clock ``CLK`` with load-enable
``LE`` then loads exactly when ``tick(CLK) ∧ LE`` holds — which is an
ordinary load-enabled latch of the base clock.

:func:`normalize_multiclock` performs that reduction: given the clock
assignment per latch and the tick input per clock, it rewrites every latch
into the single-clock enabled-latch model the rest of the library (EDBF
computation, class-aware retiming, simulation) already handles.  The latch
class after normalisation is the conjunction enable signal, so same-
``(CLK, LE)`` latches still share a class, as Legl's retiming requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.netlist.circuit import Circuit, Latch
from repro.netlist.cube import Sop

__all__ = ["MultiClockSpec", "normalize_multiclock"]


@dataclass
class MultiClockSpec:
    """Clock assignment for a multi-clock circuit.

    ``clock_of`` maps latch outputs to clock names; unmapped latches belong
    to ``default_clock``.  ``tick_input_of`` maps each clock name to the
    primary input carrying its tick predicate; the default clock ticks
    every base cycle (no input needed).
    """

    clock_of: Dict[str, str] = field(default_factory=dict)
    tick_input_of: Dict[str, str] = field(default_factory=dict)
    default_clock: str = "clk"

    def clock(self, latch_output: str) -> str:
        """The clock a latch belongs to."""
        return self.clock_of.get(latch_output, self.default_clock)

    def classes(self, circuit: Circuit) -> Dict[Tuple[str, Optional[str]], List[str]]:
        """Latches grouped by Legl class ``(CLK, LE)``."""
        out: Dict[Tuple[str, Optional[str]], List[str]] = {}
        for latch in circuit.latches.values():
            key = (self.clock(latch.output), latch.enable)
            out.setdefault(key, []).append(latch.output)
        return out


def normalize_multiclock(
    circuit: Circuit,
    spec: MultiClockSpec,
    name: Optional[str] = None,
) -> Circuit:
    """Reduce a multi-clock circuit to the single-clock enabled-latch model.

    Every latch on a non-default clock gets its enable replaced by
    ``tick ∧ enable`` (or just ``tick`` for regular latches).  Latches that
    share a Legl class ``(CLK, LE)`` share the generated conjunction
    signal, so they remain one retiming class after normalisation.

    Raises :class:`KeyError` when a non-default clock has no tick input and
    :class:`ValueError` when a tick input is not a primary input (the tick
    must come from the environment — derived clocks would need exposure
    first, exactly like derived enables).
    """
    result = circuit.copy(name or circuit.name + "_1clk")
    conj_cache: Dict[Tuple[str, Optional[str]], str] = {}
    for latch in list(result.latches.values()):
        clock = spec.clock(latch.output)
        if clock == spec.default_clock:
            continue
        if clock not in spec.tick_input_of:
            raise KeyError(f"clock {clock!r} has no tick input in the spec")
        tick = spec.tick_input_of[clock]
        if not result.is_input(tick):
            raise ValueError(
                f"tick {tick!r} for clock {clock!r} must be a primary input"
            )
        key = (clock, latch.enable)
        enable = conj_cache.get(key)
        if enable is None:
            if latch.enable is None:
                enable = tick
            else:
                enable = result.fresh_signal(f"__clk_{clock}_and_{latch.enable}")
                result.add_gate(enable, (tick, latch.enable), Sop.and_all(2))
            conj_cache[key] = enable
        result.replace_latch(Latch(latch.output, latch.data, enable))
    return result
