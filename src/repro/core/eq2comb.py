"""Generating equivalent combinational circuits (paper Sec. 7.4, Fig. 18).

A CBF/EDBF is a Boolean function over ``(input, time-tag)`` variables.  To
hand the equivalence problem to an off-the-shelf combinational checker, the
expression DAG is materialised as a combinational circuit: each variable
becomes a primary input named ``input@tag`` and each DAG node becomes a
gate.  Because the DAG was built with memoisation per (signal, tag), a cone
needed at *k* tags appears *k* times — exactly the replication of Fig. 18.

Two circuits compared with a *shared* expression table / event context get
identical variable names on both sides, so their lowered circuits can be
mitered directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cbf import CBF
from repro.core.edbf import EDBF
from repro.core.timedvar import CONST0, CONST1, ExprTable
from repro.netlist.circuit import Circuit
from repro.netlist.cube import Sop

__all__ = ["cbf_to_circuit", "edbf_to_circuit", "expr_to_circuit", "timed_input_name"]


def timed_input_name(key) -> str:
    """Canonical PI name for a timed/evented variable key."""
    tag, name, when = key
    if tag == "t":
        return f"{name}@{when}"
    return f"{name}@E{when}"


def expr_to_circuit(
    table: ExprTable,
    outputs: Dict[str, int],
    name: str,
    extra_inputs: Sequence = (),
) -> Circuit:
    """Lower expression roots to a combinational circuit.

    ``extra_inputs`` lists variable keys that must exist as PIs even if the
    outputs do not depend on them (used to give two compared circuits the
    same input set: the union of both supports).
    """
    circuit = Circuit(name)
    # Collect the union of supports to declare PIs deterministically.
    keys = set(extra_inputs)
    for node in outputs.values():
        keys |= table.support(node)
    for key in sorted(keys, key=repr):
        circuit.add_input(timed_input_name(key))

    signal_of: Dict[int, str] = {}
    roots = list(outputs.values())
    for n in table.descendants(roots):
        kind = table.kind(n)
        if kind == "c":
            sig = f"__const{n}"
            circuit.add_gate(
                sig, (), Sop.const1(0) if n == CONST1 else Sop.const0(0)
            )
            signal_of[n] = sig
        elif kind == "v":
            signal_of[n] = timed_input_name(table.var_key(n))
        else:
            sop, children = table.op_parts(n)
            sig = f"__n{n}"
            circuit.add_gate(sig, tuple(signal_of[c] for c in children), sop)
            signal_of[n] = sig
    # Constants may be roots without appearing in descendants' op set.
    for out_name, node in outputs.items():
        if node not in signal_of:
            sig = f"__const{node}"
            if circuit.driver_kind(sig) is None:
                circuit.add_gate(
                    sig, (), Sop.const1(0) if node == CONST1 else Sop.const0(0)
                )
            signal_of[node] = sig
        # Buffer so the output has its own name.
        out_sig = f"__out_{out_name}"
        circuit.add_gate(out_sig, (signal_of[node],), Sop.and_all(1))
        circuit.add_output(out_sig)
    return circuit


def cbf_to_circuit(
    cbf: CBF, name: Optional[str] = None, extra_inputs: Sequence = ()
) -> Circuit:
    """The combinational circuit of a CBF (Fig. 18(b) for Fig. 18(a))."""
    return expr_to_circuit(
        cbf.table,
        cbf.outputs,
        name or (cbf.circuit_name + "_cbf"),
        extra_inputs,
    )


def edbf_to_circuit(
    edbf: EDBF, name: Optional[str] = None, extra_inputs: Sequence = ()
) -> Circuit:
    """The combinational circuit of an EDBF."""
    return expr_to_circuit(
        edbf.table,
        edbf.outputs,
        name or (edbf.circuit_name + "_edbf"),
        extra_inputs,
    )
