"""The paper's illustrative circuit pairs (Figs. 1, 10, 11, 14).

Each function returns circuits used as executable regression tests of the
corresponding claim:

* Fig. 1 — a pair that conservative 3-valued simulation calls different
  but that is exact-3-valued equivalent (the XOR of one latch with itself
  vs the constant 0);
* Fig. 10 — sequentially equivalent enabled-latch circuits whose raw EDBFs
  differ; the Eq. 5 rewrite reconciles them;
* Fig. 11 — sequentially equivalent circuits the EDBF method cannot
  reconcile even with rewriting (enable/data interaction), the documented
  source of conservatism;
* Fig. 14 — the conditional-update latch template (positive unate
  feedback).
"""

from __future__ import annotations

from typing import Tuple

from repro.netlist.build import CircuitBuilder
from repro.netlist.circuit import Circuit

__all__ = ["fig1_pair", "fig10_pair", "fig11_pair", "fig14_conditional_update"]


def fig1_pair() -> Tuple[Circuit, Circuit]:
    """Circuits equivalent under Def. 1 but not under 3-valued simulation.

    (a) ``o = q XOR q`` for a latch ``q`` (always 0, but a 3-valued
    simulator scores it X because it cannot correlate the two X's);
    (b) ``o = 0``.
    """
    b1 = CircuitBuilder("fig1a")
    (i,) = b1.inputs("i")
    q = b1.latch(i, name="q")
    b1.output(b1.XOR(q, q), name="o")

    b2 = CircuitBuilder("fig1b")
    (i,) = b2.inputs("i")
    q = b2.latch(i, name="q")  # same latch structure, unused in the output
    z = b2.CONST0()
    b2.output(b2.AND(z, z), name="o")
    return b1.circuit, b2.circuit


def fig10_pair() -> Tuple[Circuit, Circuit]:
    """Enabled-latch pair whose EDBFs match only with the Eq. 5 rewrite.

    (a) samples ``c`` through an inner latch enabled by ``a`` and an outer
    latch enabled by ``a·b``; (b) samples ``c`` through a single latch
    enabled by ``a·b``.  The raw events are ``[a, a·b]`` vs ``[a·b]``;
    since ``a·b ⇒ a``, Eq. 5 drops the redundant inner predicate of (a)
    and the EDBFs coincide.

    The pair is equivalent under the transparent-enable reading the rule
    presumes (when the outer latch loads, ``a`` also holds, so the inner
    latch loaded at that very instant); under strict edge-triggered
    semantics the inner latch adds a real sampling step and the circuits
    are distinguishable — the regression tests exercise both readings.
    """
    b1 = CircuitBuilder("fig10a")
    a, bb, c = b1.inputs("a", "b", "c")
    ab = b1.AND(a, bb, name="ab")
    l1 = b1.latch(c, enable=a, name="L1")
    l2 = b1.latch(l1, enable=ab, name="L2")
    b1.output(l2, name="o")

    b2 = CircuitBuilder("fig10b")
    a, bb, c = b2.inputs("a", "b", "c")
    ab = b2.AND(a, bb, name="ab")
    l3 = b2.latch(c, enable=ab, name="L3")
    b2.output(l3, name="o")
    return b1.circuit, b2.circuit


def fig11_pair() -> Tuple[Circuit, Circuit]:
    """The enable/data interaction pair (EDBF false negative, Fig. 11).

    Both latches are enabled by ``b``.  (a) stores data ``b``; (b) stores
    data ``a + b``.  The circuits are sequentially equivalent: the latch
    only ever loads when ``b = 1``, and at such instants both data values
    are 1.  But as *formal* EDBFs the data functions ``b(η[b])`` and
    ``(a+b)(η[b])`` differ — the method cannot see the interaction between
    the enable and the data (the paper's Sec. 5.2 discussion), so the
    verdict is conservative (INCONCLUSIVE) even with the Eq. 5 rewrite.
    This is the exact failure mode Fig. 11 documents; the paper leaves
    handling event/data interaction as future work.
    """
    b1 = CircuitBuilder("fig11a")
    a, bb = b1.inputs("a", "b")
    l1 = b1.latch(bb, enable=bb, name="L1")
    b1.output(l1, name="o")

    b2 = CircuitBuilder("fig11b")
    a, bb = b2.inputs("a", "b")
    ab = b2.OR(a, bb, name="apb")
    l2 = b2.latch(ab, enable=bb, name="L2")
    b2.output(l2, name="o")
    return b1.circuit, b2.circuit


def fig14_conditional_update(width: int = 2) -> Circuit:
    """Fig. 14: latches that update when a condition holds, else hold.

    ``q_i' = cond·d_i + cond̄·q_i`` built structurally with a MUX feedback
    loop (not as a load-enabled latch) — the shape Sec. 6 remodels.
    """
    b = CircuitBuilder("fig14")
    conds = b.inputs(*[f"e{i}" for i in range(width)])
    datas = b.inputs(*[f"d{i}" for i in range(width)])
    for i in range(width):
        q = f"q{i}"
        b.circuit.add_latch(q, f"nxt{i}")
        b.MUX(conds[i], datas[i], q, name=f"nxt{i}")
        b.output(q, name=f"o{i}")
    return b.circuit
