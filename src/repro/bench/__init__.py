"""Benchmark circuits and workload generators.

The paper's BLIF benchmark suite (MCNC minmax/prolog, ISCAS'89 s-series,
and 12 proprietary industrial circuits) is not redistributable offline, so
this package provides seeded deterministic generators that reproduce the
*structural regimes* the experiments depend on: latch counts, feedback
topology (FSM clusters vs pipelines), the fraction of latches on feedback
paths, and the Fig. 20 memory/communication-layer interaction.  See
DESIGN.md §2 for the substitution rationale.
"""

from repro.bench.minmax import minmax_circuit
from repro.bench.pipeline import pipeline_circuit, trapped_latch_circuit
from repro.bench.iscas_like import iscas_like_circuit, TABLE1_CIRCUITS, build_table1_circuit
from repro.bench.industrial import industrial_circuit, TABLE2_CIRCUITS, build_table2_circuit
from repro.bench.counterex import (
    fig1_pair,
    fig10_pair,
    fig11_pair,
    fig14_conditional_update,
)
from repro.bench.random_circuits import random_acyclic_sequential, random_combinational
from repro.bench.compare import (
    compare_reports,
    load_report,
    parse_thresholds,
    render_comparison,
)

__all__ = [
    "compare_reports",
    "load_report",
    "parse_thresholds",
    "render_comparison",
    "minmax_circuit",
    "pipeline_circuit",
    "trapped_latch_circuit",
    "iscas_like_circuit",
    "TABLE1_CIRCUITS",
    "build_table1_circuit",
    "industrial_circuit",
    "TABLE2_CIRCUITS",
    "build_table2_circuit",
    "fig1_pair",
    "fig10_pair",
    "fig11_pair",
    "fig14_conditional_update",
    "random_acyclic_sequential",
    "random_combinational",
]
