"""Industrial-style circuits for Table 2 (Fig. 20 topology).

The paper analysed 12 proprietary control-intensive circuits with
load-enabled latches: FSM clusters interacting through an acyclic network
of pipeline latches, with extra feedback paths through a memory /
communication layer (Fig. 20).  ``TABLE2_CIRCUITS`` carries the paper's
(#latches, #exposed) pairs; the generator reproduces that structural
regime — including load enables, which is why Table 2 is an analysis-only
experiment (the paper had no retiming tool for enabled latches, Sec. 8).
"""

from __future__ import annotations

import random
import zlib
from typing import List, Optional, Tuple

from repro.bench.iscas_like import _feedback_budget
from repro.netlist.build import CircuitBuilder
from repro.netlist.circuit import Circuit
from repro.netlist.cube import Sop

__all__ = ["industrial_circuit", "TABLE2_CIRCUITS", "build_table2_circuit"]

def _stable_seed(name: str) -> int:
    """Process-independent seed from a name (``hash()`` is salted)."""
    return zlib.crc32(name.encode("utf-8"))


# (name, #latches, #exposed) — paper Table 2.
TABLE2_CIRCUITS: List[Tuple[str, int, int]] = [
    ("ex1", 2157, 934),
    ("ex2", 160, 16),
    ("ex3", 146, 56),
    ("ex4", 1437, 835),
    ("ex5", 672, 305),
    ("ex6", 412, 250),
    ("ex7", 453, 81),
    ("ex8", 968, 470),
    ("ex9", 783, 15),
    ("ex10", 634, 174),
    ("ex11", 792, 369),
    ("ex12", 2206, 691),
]


def industrial_circuit(
    name: str,
    n_latches: int,
    n_exposed: int,
    n_enable_classes: int = 3,
    seed: int = 0,
) -> Circuit:
    """A Fig. 20-style circuit: FSM clusters + acyclic glue + enables.

    ``n_exposed`` of the latches lie on feedback paths that the MFVS
    heuristic must break (FSM state bits and memory-layer loops); the rest
    are acyclic interface/pipeline registers.  A fraction of the acyclic
    latches carry load enables drawn from ``n_enable_classes`` enable PIs
    (industrial designs are dominated by such latches, Sec. 1).
    """
    pct = round(100 * n_exposed / max(1, n_latches))
    rng = random.Random(seed if seed else _stable_seed(name) & 0xFFFF)
    rings, selfloops, acyclic = _feedback_budget(n_latches, pct)
    # _feedback_budget rounds via pct; correct to the exact exposure count.
    target = n_exposed
    while rings + selfloops > target and selfloops > 0:
        selfloops -= 1
        acyclic += 1
    while rings + selfloops < target and acyclic > 0:
        selfloops += 1
        acyclic -= 1

    b = CircuitBuilder(name)
    n_inputs = max(8, min(48, n_latches // 16))
    pis = list(b.inputs(*[f"i{k}" for k in range(n_inputs)]))
    enables = list(b.inputs(*[f"ld{c}" for c in range(n_enable_classes)]))
    pool: List[str] = list(pis)

    def glue(n: int) -> None:
        for _ in range(n):
            k = rng.randint(2, min(3, len(pool)))
            fanins = rng.sample(pool, k)
            cubes = tuple(
                "".join(rng.choice("011--") for _ in range(k))
                for _ in range(rng.randint(1, 2))
            )
            pool.append(b.gate(Sop(k, cubes), fanins))

    glue(max(8, n_latches // 4))

    # FSM clusters: self-loop state bits (control FSMs, Fig. 20).
    for i in range(selfloops):
        q = f"fsm{i}"
        b.circuit.add_latch(q, f"fsm_nxt{i}")
        g, h = rng.sample(pool, 2)
        b.XOR(q, b.AND(g, h), name=f"fsm_nxt{i}")
        pool.append(q)

    # Memory/communication-layer loops: three-latch rings (the feedback
    # the paper notes designers would cut at the memory boundary).
    for i in range(rings):
        q0, q1, q2 = f"mem{i}_0", f"mem{i}_1", f"mem{i}_2"
        b.circuit.add_latch(q0, f"mem_nxt{i}")
        b.circuit.add_latch(q1, q0)
        b.circuit.add_latch(q2, q1)
        b.XOR(q2, rng.choice(pool), name=f"mem_nxt{i}")
        pool.extend([q0, q1, q2])

    glue(max(8, n_latches // 4))

    # Acyclic interface registers, most of them load-enabled.
    for i in range(acyclic):
        src = rng.choice(pool)
        en = rng.choice(enables) if rng.random() < 0.8 else None
        pool.append(b.latch(src, enable=en, name=f"p{i}"))

    glue(max(8, n_latches // 4))

    n_outputs = max(4, min(32, n_latches // 24))
    for j in range(n_outputs):
        b.output(pool[-(j + 1)], name=f"o{j}")
    return b.circuit


def build_table2_circuit(name: str, seed: int = 0) -> Circuit:
    """Build the stand-in for one Table 2 row by name."""
    entry = next((e for e in TABLE2_CIRCUITS if e[0] == name), None)
    if entry is None:
        raise KeyError(f"unknown Table 2 circuit {name!r}")
    _, n_latches, n_exposed = entry
    return industrial_circuit(
        name, n_latches, n_exposed, seed=seed or (_stable_seed(name) & 0x7FFF)
    )
