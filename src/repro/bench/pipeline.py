"""Pipelined and trapped-latch circuits (paper Figs. 3 and 6).

* :func:`pipeline_circuit` — ``k`` combinational stages separated by latch
  walls (Fig. 6), the canonical acyclic circuit where latches cannot be
  retimed to the periphery;
* :func:`trapped_latch_circuit` — latches buried inside a combinational
  block (Fig. 3), including the paper's exact example.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.netlist.build import CircuitBuilder
from repro.netlist.circuit import Circuit

__all__ = ["pipeline_circuit", "trapped_latch_circuit", "fig3_circuit"]


def _random_stage(
    b: CircuitBuilder, sigs: List[str], width: int, depth: int, rng: random.Random
) -> List[str]:
    """A random combinational stage producing ``width`` signals."""
    pool = list(sigs)
    for _ in range(depth * width):
        op = rng.choice(["AND", "OR", "XOR", "NAND", "NOR"])
        a, c = rng.sample(pool, 2) if len(pool) >= 2 else (pool[0], pool[0])
        if op == "XOR":
            out = b.XOR(a, c)
        else:
            out = getattr(b, op)(a, c)
        pool.append(out)
    return pool[-width:]


def pipeline_circuit(
    stages: int = 3,
    width: int = 4,
    stage_depth: int = 3,
    seed: int = 0,
    enable: bool = False,
    name: Optional[str] = None,
) -> Circuit:
    """A ``stages``-deep pipeline over a ``width``-bit datapath (Fig. 6).

    ``enable=True`` gives every latch wall a shared load-enable input
    (one enable PI per stage), producing an acyclic *enabled* circuit for
    the EDBF machinery.
    """
    rng = random.Random(seed)
    b = CircuitBuilder(name or f"pipe{stages}x{width}")
    sigs = b.input_bus("in", width)
    enables = (
        [b.input(f"en{s}") for s in range(stages)] if enable else [None] * stages
    )
    for s in range(stages):
        stage_out = _random_stage(b, sigs, width, stage_depth, rng)
        sigs = [b.latch(x, enable=enables[s]) for x in stage_out]
    for i, sig in enumerate(sigs):
        b.output(sig, name=f"out{i}")
    return b.circuit


def fig3_circuit() -> Circuit:
    """The paper's Fig. 3: a latch trapped in a combinational block.

    ``o(t) = [a(t-1)·a(t)] · [a(t-2)·a(t-1)]`` via ``b = latch(a)``,
    ``c = b·a``, ``d = latch(c)``, ``o = c·d``.
    """
    b = CircuitBuilder("fig3")
    (a,) = b.inputs("a")
    bb = b.latch(a, name="b")
    c = b.AND(bb, a, name="c")
    d = b.latch(c, name="d")
    b.output(b.AND(c, d), name="o")
    return b.circuit


def trapped_latch_circuit(
    width: int = 4, seed: int = 0, name: Optional[str] = None
) -> Circuit:
    """A block with latches trapped between combinational clouds."""
    rng = random.Random(seed)
    b = CircuitBuilder(name or f"trapped{width}")
    ins = b.input_bus("in", width)
    front = _random_stage(b, ins, width, 2, rng)
    mids = [b.latch(x) for x in front]
    # The back cloud mixes delayed and fresh signals (what makes the latch
    # "trapped": it cannot move to the periphery).
    back_in = mids + ins
    back = _random_stage(b, back_in, width, 2, rng)
    for i, sig in enumerate(back):
        b.output(sig, name=f"out{i}")
    return b.circuit
