"""Seeded stand-ins for the paper's Table 1 benchmark circuits.

The MCNC/ISCAS'89 BLIF sources are not redistributable offline; these
generators reproduce the structural features Table 1 depends on: the latch
count, the fraction of latches on feedback paths (= the % exposed column),
and a realistic mix of FSM clusters, latch rings and pipeline registers
with combinational glue.

The scanned table's circuit names are OCR-garbled; DESIGN.md §6 records the
reconstruction from latch counts.  ``TABLE1_CIRCUITS`` lists
``(name, latches, pct_exposed, gate_scale)`` with the paper's values; the
two largest circuits are scaled down in gate volume (latch counts kept) so
the full table regenerates in minutes.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Optional, Tuple

from repro.bench.minmax import minmax_circuit
from repro.netlist.build import CircuitBuilder
from repro.netlist.circuit import Circuit
from repro.netlist.cube import Sop

__all__ = ["iscas_like_circuit", "TABLE1_CIRCUITS", "build_table1_circuit"]

def _stable_seed(name: str) -> int:
    """Process-independent seed from a name (``hash()`` is salted)."""
    return zlib.crc32(name.encode("utf-8"))


# (name, #latches (paper col. A), % latches exposed (paper col. %)).
TABLE1_CIRCUITS: List[Tuple[str, int, int]] = [
    ("minmax10", 30, 66),
    ("minmax12", 36, 66),
    ("minmax20", 60, 66),
    ("minmax32", 96, 66),
    ("prolog", 65, 43),
    ("s1196", 18, 0),
    ("s1238", 18, 0),
    ("s1269", 37, 75),
    ("s1423", 74, 95),
    ("s3271", 116, 94),
    ("s3384", 183, 39),
    ("s400", 21, 71),
    ("s444", 21, 71),
    ("s4863", 88, 18),
    ("s641", 19, 78),
    ("s6669", 231, 17),
    ("s713", 19, 78),
    ("s9234", 135, 66),
    ("s953", 29, 20),
    ("s967", 29, 20),
    ("s3330", 65, 43),
    ("s15850", 515, 72),
    ("s38417", 1464, 70),
]


def _feedback_budget(n_latches: int, pct_exposed: int) -> Tuple[int, int, int]:
    """Split the latch budget into (rings, self-loops, acyclic latches).

    A ring of three latches costs one exposure; a self-loop latch costs
    one.  Returns (#rings, #self-loops, #acyclic) such that the exposure
    count is ``round(pct · L / 100)`` exactly.
    """
    target = round(n_latches * pct_exposed / 100)
    target = min(target, n_latches)
    rings = min(target // 4, max(0, (n_latches - target) // 2))
    selfloops = target - rings
    acyclic = n_latches - 3 * rings - selfloops
    if acyclic < 0:  # fall back to self-loops only
        rings = 0
        selfloops = target
        acyclic = n_latches - target
    return rings, selfloops, acyclic


def iscas_like_circuit(
    name: str,
    n_latches: int,
    pct_exposed: int,
    n_inputs: int = 8,
    n_outputs: int = 6,
    gates_per_latch: float = 3.0,
    seed: int = 0,
) -> Circuit:
    """Build a circuit with the given latch count and feedback fraction.

    Feedback structure:

    * *self-loop latches*: ``q' = q XOR f(...)`` (toggle-style, not
      positive unate — they must be exposed, like FSM state bits);
    * *rings*: three latches in a cycle ``q0→q1→q2→q0`` with non-unate
      re-entry (the MFVS exposes one per ring);
    * *acyclic latches*: pipeline registers over the glue logic.
    """
    rng = random.Random(seed if seed else _stable_seed(name) & 0xFFFF)
    rings, selfloops, acyclic = _feedback_budget(n_latches, pct_exposed)
    b = CircuitBuilder(name)
    pis = list(b.inputs(*[f"i{k}" for k in range(n_inputs)]))
    pool: List[str] = list(pis)

    def glue(n: int) -> None:
        for _ in range(n):
            k = rng.randint(2, min(3, len(pool)))
            fanins = rng.sample(pool, k)
            cubes = tuple(
                "".join(rng.choice("011--") for _ in range(k))
                for _ in range(rng.randint(1, 2))
            )
            pool.append(b.gate(Sop(k, cubes), fanins))

    glue(max(4, int(n_latches * gates_per_latch * 0.2)))

    # Self-loop latches (FSM state bits): q' = q XOR g(pool).
    for i in range(selfloops):
        q = f"fsm{i}"
        b.circuit.add_latch(q, f"fsm_nxt{i}")
        g = rng.choice(pool)
        h = rng.choice(pool)
        cond = b.AND(g, h) if rng.random() < 0.5 else b.OR(g, h)
        b.XOR(q, cond, name=f"fsm_nxt{i}")
        pool.append(q)

    # Rings of three latches with a non-unate closing gate.
    for i in range(rings):
        q0, q1, q2 = f"rg{i}_0", f"rg{i}_1", f"rg{i}_2"
        b.circuit.add_latch(q0, f"rg_nxt{i}")
        b.circuit.add_latch(q1, q0)
        b.circuit.add_latch(q2, q1)
        mixer = rng.choice(pool)
        b.XOR(q2, mixer, name=f"rg_nxt{i}")
        pool.extend([q0, q1, q2])

    glue(max(4, int(n_latches * gates_per_latch * 0.4)))

    # Acyclic pipeline registers.
    for i in range(acyclic):
        src = rng.choice(pool)
        pool.append(b.latch(src, name=f"p{i}"))
        if rng.random() < 0.3:
            glue(1)

    glue(max(4, int(n_latches * gates_per_latch * 0.4)))

    for j in range(n_outputs):
        b.output(pool[-(j + 1)], name=f"o{j}")
    return b.circuit


def build_table1_circuit(name: str, seed: int = 0) -> Circuit:
    """Build the stand-in for one Table 1 row by name."""
    entry = next((e for e in TABLE1_CIRCUITS if e[0] == name), None)
    if entry is None:
        raise KeyError(f"unknown Table 1 circuit {name!r}")
    _, n_latches, pct = entry
    if name.startswith("minmax"):
        return minmax_circuit(n_latches // 3, name=name)
    # Scale the glue volume down for the two giants.
    gates_per_latch = 3.0
    if n_latches > 400:
        gates_per_latch = 1.0
    n_inputs = max(6, min(32, n_latches // 8))
    n_outputs = max(4, min(24, n_latches // 10))
    return iscas_like_circuit(
        name,
        n_latches,
        pct,
        n_inputs=n_inputs,
        n_outputs=n_outputs,
        gates_per_latch=gates_per_latch,
        seed=seed or (_stable_seed(name) & 0x7FFF),
    )
