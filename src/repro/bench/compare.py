"""Benchmark regression gating: diff a fresh BENCH_cec.json vs baseline.

``repro bench compare fresh.json --baseline BENCH_cec.json`` compares
the per-mode totals of two benchmark reports under per-metric
percentage thresholds and exits nonzero when the fresh run regressed —
the CI gate that turns the checked-in ``BENCH_cec.json`` from a
write-only artifact into an enforced floor.

Regression semantics, tuned for noisy CI boxes:

* a mode/metric pair regresses when the fresh total exceeds the
  baseline by **both** the relative threshold (default 20%) and an
  absolute floor — a 3-query jump on a 5-query mode is real, a 0.8 ms
  jump on a 2 ms total is scheduler noise;
* ``sat_queries`` is deterministic (seeded engines), so its floor is
  small; ``seconds`` carries a floor well above timer resolution;
* any ``verdict_divergences`` in the fresh report fail the comparison
  outright — correctness outranks every performance number;
* a mode present in the baseline but missing from the fresh report
  fails (a silently dropped configuration is not an improvement);
  modes only in the fresh report are listed as additions, not failures;
* the baseline compared against itself always passes — the identity
  check CI runs to prove the gate itself is sound.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

__all__ = [
    "DEFAULT_THRESHOLDS",
    "ABSOLUTE_FLOORS",
    "MetricDelta",
    "compare_reports",
    "load_report",
    "parse_thresholds",
    "render_comparison",
]

#: Relative regression thresholds, percent over baseline, per metric.
DEFAULT_THRESHOLDS: Dict[str, float] = {
    "sat_queries": 20.0,
    "seconds": 20.0,
}

#: Absolute floors: a delta below this never counts as a regression,
#: whatever the percentage says.  Keeps 2ms-total modes from failing CI
#: on scheduler jitter and 5-query modes from failing on one extra call.
ABSOLUTE_FLOORS: Dict[str, float] = {
    "sat_queries": 3.0,
    "seconds": 0.05,
}


@dataclass
class MetricDelta:
    """One mode/metric comparison row."""

    mode: str
    metric: str
    baseline: float
    fresh: float
    threshold_pct: float
    #: "ok" | "regression" | "improved" | "missing" | "added"
    status: str

    @property
    def delta_pct(self) -> Optional[float]:
        """Relative change, percent; None when the baseline is zero."""
        if self.baseline == 0:
            return None
        return 100.0 * (self.fresh - self.baseline) / self.baseline

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready row for ``--json`` output and CI artifacts."""
        return {
            "mode": self.mode,
            "metric": self.metric,
            "baseline": self.baseline,
            "fresh": self.fresh,
            "delta_pct": (
                None
                if self.delta_pct is None
                else round(self.delta_pct, 2)
            ),
            "threshold_pct": self.threshold_pct,
            "status": self.status,
        }


def load_report(path: Union[str, os.PathLike]) -> Dict[str, Any]:
    """Load one benchmark report; raises ValueError on a non-report."""
    with open(os.fspath(path), "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if not isinstance(report, dict) or "totals" not in report:
        raise ValueError(
            f"{os.fspath(path)}: not a benchmark report (no 'totals')"
        )
    return report


def parse_thresholds(specs: Optional[List[str]]) -> Dict[str, float]:
    """Fold ``METRIC=PCT`` CLI specs over the default thresholds."""
    thresholds = dict(DEFAULT_THRESHOLDS)
    for spec in specs or ():
        metric, sep, pct_text = spec.partition("=")
        metric = metric.strip()
        if not sep or not metric:
            raise ValueError(
                f"bad threshold {spec!r}: expected METRIC=PERCENT"
            )
        try:
            thresholds[metric] = float(pct_text)
        except ValueError as exc:
            raise ValueError(
                f"bad threshold {spec!r}: {pct_text!r} is not a number"
            ) from exc
    return thresholds


def compare_reports(
    baseline: Mapping[str, Any],
    fresh: Mapping[str, Any],
    thresholds: Optional[Mapping[str, float]] = None,
) -> Tuple[List[MetricDelta], List[str]]:
    """Compare two reports' per-mode totals.

    Returns ``(deltas, failures)``; the comparison passes iff
    ``failures`` is empty.
    """
    thresholds = dict(thresholds or DEFAULT_THRESHOLDS)
    base_totals: Dict[str, Any] = dict(baseline.get("totals") or {})
    fresh_totals: Dict[str, Any] = dict(fresh.get("totals") or {})
    deltas: List[MetricDelta] = []
    failures: List[str] = []

    divergences = fresh.get("verdict_divergences") or []
    if divergences:
        names = ", ".join(
            str(d.get("pair", "?")) for d in divergences[:5]
        )
        failures.append(
            f"fresh report has {len(divergences)} verdict divergence(s) "
            f"({names}); correctness failure, not a perf comparison"
        )

    for mode in sorted(base_totals):
        base_row = base_totals[mode] or {}
        fresh_row = fresh_totals.get(mode)
        if fresh_row is None:
            for metric in sorted(thresholds):
                if metric in base_row:
                    deltas.append(
                        MetricDelta(
                            mode,
                            metric,
                            float(base_row[metric]),
                            0.0,
                            thresholds[metric],
                            "missing",
                        )
                    )
            failures.append(
                f"mode {mode!r} present in baseline but missing from "
                "the fresh report"
            )
            continue
        for metric, pct in sorted(thresholds.items()):
            if metric not in base_row or metric not in fresh_row:
                continue
            base_value = float(base_row[metric])
            fresh_value = float(fresh_row[metric])
            allowed = base_value * (1.0 + pct / 100.0)
            floor = ABSOLUTE_FLOORS.get(metric, 0.0)
            regressed = (
                fresh_value > allowed
                and (fresh_value - base_value) > floor
            )
            if regressed:
                status = "regression"
                failures.append(
                    f"{mode}.{metric}: {fresh_value:g} vs baseline "
                    f"{base_value:g} (allowed {allowed:g}, +{pct:g}%)"
                )
            elif fresh_value < base_value:
                status = "improved"
            else:
                status = "ok"
            deltas.append(
                MetricDelta(
                    mode, metric, base_value, fresh_value, pct, status
                )
            )

    for mode in sorted(set(fresh_totals) - set(base_totals)):
        fresh_row = fresh_totals[mode] or {}
        for metric in sorted(thresholds):
            if metric in fresh_row:
                deltas.append(
                    MetricDelta(
                        mode,
                        metric,
                        0.0,
                        float(fresh_row[metric]),
                        thresholds[metric],
                        "added",
                    )
                )
    return deltas, failures


def render_comparison(
    deltas: List[MetricDelta], failures: List[str]
) -> str:
    """Human-readable comparison table plus the verdict line."""
    lines: List[str] = []
    if deltas:
        width = max(len(d.mode) for d in deltas)
        for delta in deltas:
            pct = delta.delta_pct
            pct_text = "   n/a" if pct is None else f"{pct:+6.1f}%"
            marker = {
                "regression": "FAIL",
                "missing": "MISS",
                "added": " new",
                "improved": "  ok",
                "ok": "  ok",
            }[delta.status]
            lines.append(
                f"{marker}  {delta.mode:<{width}s}  "
                f"{delta.metric:<12s} {delta.baseline:>10g} -> "
                f"{delta.fresh:>10g}  {pct_text} "
                f"(limit +{delta.threshold_pct:g}%)"
            )
    for failure in failures:
        lines.append(f"REGRESSION: {failure}")
    lines.append(
        "bench compare: "
        + ("FAIL" if failures else "PASS")
        + f" ({len([d for d in deltas if d.status == 'regression'])} "
        f"regression(s) across {len(deltas)} comparison(s))"
    )
    return "\n".join(lines)
