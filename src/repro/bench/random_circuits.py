"""Random circuit generators for property-based tests."""

from __future__ import annotations

import random
from typing import List, Optional

from repro.netlist.build import CircuitBuilder
from repro.netlist.circuit import Circuit
from repro.netlist.cube import Sop

__all__ = ["random_combinational", "random_acyclic_sequential"]


def random_combinational(
    n_inputs: int = 5,
    n_gates: int = 20,
    n_outputs: int = 3,
    seed: int = 0,
    name: str = "rand_comb",
) -> Circuit:
    """A random combinational circuit with mixed SOP gates."""
    rng = random.Random(seed)
    b = CircuitBuilder(name)
    sigs: List[str] = list(b.inputs(*[f"i{k}" for k in range(n_inputs)]))
    for _ in range(n_gates):
        k = rng.randint(1, min(4, len(sigs)))
        fanins = rng.sample(sigs, k)
        n_cubes = rng.randint(1, 3)
        cubes = []
        for _ in range(n_cubes):
            cube = "".join(rng.choice("01--") for _ in range(k))
            cubes.append(cube)
        sigs.append(b.gate(Sop(k, tuple(cubes)), fanins))
    n_outputs = min(n_outputs, len(sigs))
    for j in range(n_outputs):
        b.output(sigs[-(j + 1)], name=f"o{j}")
    return b.circuit


def random_acyclic_sequential(
    n_inputs: int = 4,
    n_gates: int = 15,
    n_latches: int = 4,
    n_outputs: int = 2,
    enabled: bool = False,
    seed: int = 0,
    name: str = "rand_seq",
) -> Circuit:
    """A random acyclic sequential circuit (no latch feedback).

    Latches are inserted on freshly generated signals only (each latch reads
    a signal created before it), which guarantees acyclicity.  With
    ``enabled=True`` each latch gets one of two enable PIs (two latch
    classes).
    """
    rng = random.Random(seed)
    b = CircuitBuilder(name)
    sigs: List[str] = list(b.inputs(*[f"i{k}" for k in range(n_inputs)]))
    enables: List[Optional[str]] = [None]
    if enabled:
        enables = list(b.inputs("enA", "enB"))
    ops_left = n_gates
    latches_left = n_latches
    while ops_left > 0 or latches_left > 0:
        make_latch = latches_left > 0 and (
            ops_left == 0 or rng.random() < latches_left / (ops_left + latches_left)
        )
        if make_latch:
            src = rng.choice(sigs)
            en = rng.choice(enables) if enabled else None
            sigs.append(b.latch(src, enable=en))
            latches_left -= 1
        else:
            k = rng.randint(1, min(3, len(sigs)))
            fanins = rng.sample(sigs, k)
            cubes = tuple(
                "".join(rng.choice("01--") for _ in range(k))
                for _ in range(rng.randint(1, 3))
            )
            sigs.append(b.gate(Sop(k, cubes), fanins))
            ops_left -= 1
    for j in range(min(n_outputs, len(sigs))):
        b.output(sigs[-(j + 1)], name=f"o{j}")
    return b.circuit
