"""The minmax benchmark family (Table 1 rows minmax10/12/20/32).

A serial min/max tracker over a ``k``-bit input stream:

* an input register ``R`` samples the primary input bus (acyclic latches);
* a MIN register keeps ``min(R, MIN)`` and a MAX register ``max(R, MAX)``
  (feedback latches — the compare-and-select loop);
* outputs are the MIN and MAX values.

Latch count is ``3k`` — matching the paper's rows: minmax10 has 30
latches, minmax12 36, minmax20 60, minmax32 96.  Exactly the MIN/MAX
registers (two thirds of the latches) lie on feedback paths, matching the
66% exposure the paper reports for this family.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.netlist.build import CircuitBuilder
from repro.netlist.circuit import Circuit

__all__ = ["minmax_circuit"]


def _less_than(b: CircuitBuilder, xs: List[str], ys: List[str]) -> str:
    """Unsigned comparator: 1 iff X < Y (bit 0 = LSB), as a gate network."""
    # Ripple from LSB: lt_i = (x_i < y_i) OR (x_i == y_i AND lt_{i-1}).
    lt = b.CONST0()
    for x, y in zip(xs, ys):
        bit_lt = b.ANDN(y, x)  # y AND NOT x
        eq = b.XNOR(x, y)
        lt = b.OR(bit_lt, b.AND(eq, lt))
    return lt


def minmax_circuit(k: int, name: str = "") -> Circuit:
    """Build the ``k``-bit minmax tracker (3k latches)."""
    b = CircuitBuilder(name or f"minmax{k}")
    data = b.input_bus("in", k)
    # Input register (acyclic).
    reg = [b.latch(data[i], name=f"r{i}") for i in range(k)]

    # MIN register with feedback: MIN' = (reg < MIN) ? reg : MIN.
    min_names = [f"min{i}" for i in range(k)]
    max_names = [f"max{i}" for i in range(k)]
    # Latches are declared first (their data nets are built after).
    for i in range(k):
        b.circuit.add_latch(min_names[i], f"min_nxt{i}")
        b.circuit.add_latch(max_names[i], f"max_nxt{i}")
    lt = _less_than(b, reg, min_names)
    gt = _less_than(b, max_names, reg)
    for i in range(k):
        b.MUX(lt, reg[i], min_names[i], name=f"min_nxt{i}")
        b.MUX(gt, reg[i], max_names[i], name=f"max_nxt{i}")
    for i in range(k):
        b.output(min_names[i], name=f"omin{i}")
        b.output(max_names[i], name=f"omax{i}")
    return b.circuit
