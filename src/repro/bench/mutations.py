"""Systematic fault injection for checker validation.

Generates classic netlist fault models as mutated circuit copies:

* ``stuck_at`` — a gate output tied to 0/1;
* ``negation`` — a gate's function complemented;
* ``wrong_gate`` — AND↔OR style cover swaps;
* ``input_swap`` — two fanins of a gate exchanged (order-sensitive gates);
* ``latch_bypass`` — a latch replaced by a wire (off-by-one-cycle bug);
* ``enable_stuck`` — a load-enable tied to constant 1 (loses the hold).

The test suite uses these to validate the *negative* direction of the
checker: every behaviourally visible fault must be flagged (never called
EQUIVALENT), and every masked fault must not produce a false alarm — the
two-sided soundness a verification tool actually needs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.netlist.circuit import Circuit, Gate, Latch
from repro.netlist.cube import Sop
from repro.netlist.transform import cone_of_influence

__all__ = ["Mutation", "enumerate_mutations", "apply_mutation", "sample_mutations"]


@dataclass(frozen=True)
class Mutation:
    """One injectable fault."""

    kind: str
    target: str  # gate or latch output signal
    detail: str = ""

    def describe(self) -> str:
        """Human-readable one-line fault description."""
        extra = f" ({self.detail})" if self.detail else ""
        return f"{self.kind} @ {self.target}{extra}"


def enumerate_mutations(circuit: Circuit, live_only: bool = True) -> List[Mutation]:
    """All injectable faults (optionally restricted to the output cone).

    ``latch_bypass`` is only offered for latches that are not on a
    combinational self-loop — bypassing those would produce an ill-formed
    (cyclic) netlist rather than a behavioural bug.
    """
    from repro.netlist.graph import self_loop_latches

    live = cone_of_influence(circuit) if live_only else set(circuit.signals())
    self_loops = self_loop_latches(circuit)
    out: List[Mutation] = []
    for gate in circuit.gates.values():
        if gate.output not in live or not gate.inputs:
            continue
        out.append(Mutation("stuck_at_0", gate.output))
        out.append(Mutation("stuck_at_1", gate.output))
        out.append(Mutation("negation", gate.output))
        if len(gate.inputs) >= 2 and len(set(gate.inputs[:2])) == 2:
            out.append(Mutation("input_swap", gate.output, "pins 0,1"))
        out.append(Mutation("wrong_gate", gate.output))
    for latch in circuit.latches.values():
        if latch.output not in live:
            continue
        if latch.output not in self_loops:
            out.append(Mutation("latch_bypass", latch.output))
        if latch.enable is not None:
            out.append(Mutation("enable_stuck", latch.output))
    return out


def apply_mutation(circuit: Circuit, mutation: Mutation) -> Circuit:
    """A mutated copy of the circuit."""
    mutated = circuit.copy(f"{circuit.name}__{mutation.kind}_{mutation.target}")
    kind, target = mutation.kind, mutation.target
    if kind in ("stuck_at_0", "stuck_at_1"):
        gate = mutated.gates[target]
        const = Sop.const1(0) if kind.endswith("1") else Sop.const0(0)
        mutated.replace_gate(Gate(target, (), const))
    elif kind == "negation":
        gate = mutated.gates[target]
        mutated.replace_gate(
            Gate(target, gate.inputs, gate.sop.complement())
        )
    elif kind == "input_swap":
        gate = mutated.gates[target]
        inputs = list(gate.inputs)
        inputs[0], inputs[1] = inputs[1], inputs[0]
        mutated.replace_gate(Gate(target, tuple(inputs), gate.sop))
    elif kind == "wrong_gate":
        gate = mutated.gates[target]
        n = len(gate.inputs)
        if gate.sop == Sop.and_all(n):
            wrong = Sop.or_all(n)
        elif gate.sop == Sop.or_all(n):
            wrong = Sop.and_all(n)
        else:  # general covers: dualise one cube's polarity
            wrong = gate.sop.negate_input(0)
        mutated.replace_gate(Gate(target, gate.inputs, wrong))
    elif kind == "latch_bypass":
        latch = mutated.latches[target]
        mutated.remove_latch(target)
        mutated.add_gate(target, (latch.data,), Sop.and_all(1))
    elif kind == "enable_stuck":
        latch = mutated.latches[target]
        mutated.replace_latch(Latch(target, latch.data, None))
    else:
        raise ValueError(f"unknown mutation kind {kind!r}")
    return mutated


def sample_mutations(
    circuit: Circuit, count: int, seed: int = 0
) -> Iterator[Tuple[Mutation, Circuit]]:
    """A reproducible random sample of applied mutations."""
    rng = random.Random(seed)
    pool = enumerate_mutations(circuit)
    rng.shuffle(pool)
    for mutation in pool[:count]:
        yield mutation, apply_mutation(circuit, mutation)
