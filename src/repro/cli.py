"""Command-line interface.

::

    python -m repro verify  golden.blif revised.blif [--rewrite] [--no-unate]
                            [--jobs N] [--cec-cache FILE] [--no-refine]
                            [--no-preprocess] [--no-share-learned]
                            [--time-limit S]
                            [--bdd-node-limit N]
                            [--engines NAMES] [--dispatch-policy NAME]
                            [--dispatch-store FILE]
                            [--trace FILE] [--metrics-out FILE]
                            [--oblog FILE]
                            [--quiet] [--verbose]
    python -m repro retime  circuit.blif -o out.blif [--min-area] [--period N]
    python -m repro synth   circuit.blif -o out.blif [--effort medium]
    python -m repro expose  circuit.blif [--weighted] [--no-unate] [-o out.blif]
    python -m repro stats   circuit.blif
    python -m repro table1  [--quick] [--jobs N] [--cache FILE] [--time-limit S]
                            [--on-error skip|abort] [--checkpoint FILE --resume]
                            [--trace FILE] [--metrics-out FILE]
    python -m repro table2  [--quick] [--on-error skip|abort] [--trace FILE]
    python -m repro profile run.jsonl [--top N] [--chrome OUT] [--validate]
    python -m repro batch   manifest.json [--jobs N] [--time-limit S]
                            [--cache FILE] [--store FILE --resume]
                            [--retries N] [--in-process]
                            [--engines NAMES] [--dispatch-policy NAME]
                            [--dispatch-store FILE]
                            [--lease-ttl S --lease-attempts N]
                            [--chaos PLAN.json --chaos-log FILE]
                            [--trace FILE] [--metrics-out FILE]
                            [--telemetry FILE [--telemetry-interval S]]
                            [--oblog FILE]
    python -m repro serve   [--jobs N] [--cache FILE] [--store FILE]
                            [--queue-size N] [--tcp HOST:PORT]
                            [--lease-ttl S] [--chaos PLAN.json]
                            [--telemetry FILE [--telemetry-interval S]]
                            [--prom-port N]
                            (JSONL jobs on stdin, JSONL results on
                            stdout; --tcp serves the same protocol over
                            a socket instead; --prom-port exposes
                            Prometheus text metrics next to --tcp)
    python -m repro worker  HOST:PORT [--lanes N] [--in-process]
    python -m repro status  HOST:PORT [--watch] [--interval S] [--json]
    python -m repro bench compare FRESH.json [--baseline BENCH_cec.json]
                            [--threshold METRIC=PCT ...] [--json OUT]

Exit codes of ``verify`` (and the per-job codes of ``batch``): 0
equivalent, 1 not equivalent (a counterexample is printed), 2 unknown —
undecided, with the reason printed (a resource budget ran dry, a worker
failed, or the conservative EDBF check was inconclusive).  ``batch``
itself exits 1 if any job refuted, else 2 if any job was undecided,
else 0.

Circuits are read and written in BLIF (with the ``.enable`` extension for
load-enabled latches).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Optional, Sequence

from repro.netlist.blif import parse_blif_file, write_blif
from repro.netlist.validate import validate_circuit
from repro.obs.console import Console

__all__ = ["main"]


def _console(args) -> Console:
    """A console honouring the command's --quiet/--verbose flags."""
    return Console(
        quiet=getattr(args, "quiet", False),
        verbose=getattr(args, "verbose", False),
    )


def _make_tracer(args, meta):
    """The command's tracer: file-backed for --trace, in-memory when only
    --oblog needs the event stream, None when neither is asked for."""
    from repro.obs.trace import Tracer

    if args.trace:
        return Tracer(path=args.trace, meta=meta)
    if getattr(args, "oblog", None):
        return Tracer(sink=[], meta=meta)
    return None


def _write_oblog(args, tracer, console) -> None:
    """Distil the closed tracer's events into the --oblog JSONL file."""
    out = getattr(args, "oblog", None)
    if not out or tracer is None:
        return
    from repro.obs.oblog import extract_obligation_records, write_obligation_log
    from repro.obs.trace import read_events

    events = read_events(args.trace) if args.trace else tracer.events
    count = write_obligation_log(extract_obligation_records(events), out)
    console.info(f"wrote {count} obligation record(s) to {out}")


def _cmd_verify(args) -> int:
    from repro.api import VerifyRequest, verify_pair
    from repro.flows.report import compact_stats
    from repro.obs.metrics import MetricsRegistry

    console = _console(args)
    request = VerifyRequest(
        golden=args.golden,
        revised=args.revised,
        use_unateness=not args.no_unate,
        event_rewrite=args.rewrite,
        jobs=args.jobs,
        cache=args.cec_cache,
        refine=not args.no_refine,
        preprocess=not args.no_preprocess,
        share_learned=not args.no_share_learned,
        time_limit=args.time_limit,
        bdd_node_limit=args.bdd_node_limit,
        engines=args.engines,
        dispatch_policy=args.dispatch_policy,
        dispatch_store=args.dispatch_store,
    )
    tracer = _make_tracer(
        args,
        meta={"command": "verify", "golden": args.golden, "revised": args.revised},
    )
    registry = MetricsRegistry() if args.metrics_out else None
    try:
        report = verify_pair(request, tracer=tracer, metrics=registry)
    finally:
        if tracer is not None:
            tracer.close()
        if registry is not None:
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(registry.to_json(indent=2))
        _write_oblog(args, tracer, console)
    console.result(f"verdict: {report.verdict} (method: {report.method})")
    if report.reason is not None:
        console.result(f"  reason: {report.reason}")
    if report.engine_used:
        breakdown = ", ".join(
            f"{name}={count}"
            for name, count in sorted(report.engine_used.items())
        )
        console.info(f"  engines: {breakdown}")
    shown = (
        dict(report.stats) if args.verbose else compact_stats(report.stats)
    )
    for key in sorted(shown):
        console.info(f"  {key}: {shown[key]}")
    if report.counterexample is not None:
        console.result("counterexample input sequence:")
        for t, vec in enumerate(report.counterexample):
            bits = " ".join(f"{k}={int(v)}" for k, v in sorted(vec.items()))
            console.result(f"  cycle {t}: {bits}")
        if report.failing_output:
            console.result(f"  differing output: {report.failing_output}")
        if args.vcd:
            from repro.sim.vcd import dump_counterexample

            c1, c2 = request.load()
            dump_counterexample(c1, c2, report.counterexample, args.vcd)
            console.info(f"wrote waveform to {args.vcd}")
    if args.report:
        from repro.core.report import write_report

        c1, c2 = request.load()
        write_report(report, c1, c2, args.report)
        console.info(f"wrote report to {args.report}")
    if args.trace:
        console.info(f"wrote trace to {args.trace} (see: repro profile {args.trace})")
    if args.metrics_out:
        console.info(f"wrote metrics to {args.metrics_out}")
    # Exit-code contract (see docs/API.md): 0 equivalent, 1 not
    # equivalent, 2 undecided — including the conservative EDBF
    # INCONCLUSIVE outcome, which is "could not decide", not a refutation.
    return report.exit_code


def _setup_chaos(args, console, registry=None):
    """Install the ``--chaos`` fault plan; returns (ok, plan).

    The plan is exported through ``REPRO_CHAOS`` so process-pool workers
    re-install it on entry even under the ``spawn`` start method.
    """
    import os

    from repro.runtime import chaos

    path = getattr(args, "chaos", None)
    if not path:
        return True, None
    try:
        plan = chaos.FaultPlan.load(path)
    except (OSError, ValueError) as exc:
        console.error(f"bad chaos plan {path}: {exc}")
        return False, None
    chaos.install(plan, metrics=registry)
    os.environ[chaos.ENV_VAR] = os.path.abspath(path)
    console.info(
        f"chaos: fault plan {path} armed "
        f"({len(plan.rules)} rule(s), seed {plan.seed})"
    )
    return True, plan


def _write_chaos_log(args, plan, console) -> None:
    """Dump the chaos firing log (the CI trace artifact), if asked to."""
    import json as _json

    out = getattr(args, "chaos_log", None)
    if not out or plan is None:
        return
    with open(out, "w", encoding="utf-8") as handle:
        _json.dump(
            {"plan": plan.to_dict(), "fired": plan.log},
            handle,
            indent=2,
            sort_keys=True,
        )
    console.info(f"chaos: {len(plan.log)} firing(s) logged to {out}")


def _cmd_batch(args) -> int:
    import asyncio

    from repro.obs.metrics import MetricsRegistry
    from repro.service import BatchRunner, load_manifest

    console = _console(args)
    try:
        requests = load_manifest(args.manifest)
    except (OSError, ValueError) as exc:
        console.error(f"bad manifest {args.manifest}: {exc}")
        return 2
    if not requests:
        console.error(f"manifest {args.manifest} has no jobs")
        return 2
    # CLI dispatch overrides trump per-row manifest settings (they are
    # verdict-preserving engine options, not obligation identity).
    for request in requests:
        if args.engines is not None:
            request.engines = [
                part.strip()
                for part in args.engines.split(",")
                if part.strip()
            ]
        if args.dispatch_policy is not None:
            request.dispatch_policy = args.dispatch_policy
        if args.dispatch_store is not None:
            request.dispatch_store = args.dispatch_store
    tracer = _make_tracer(
        args,
        meta={"command": "batch", "manifest": args.manifest, "jobs": args.jobs},
    )
    registry = (
        MetricsRegistry()
        if (args.metrics_out or args.chaos or args.telemetry)
        else None
    )
    telemetry = None
    if args.telemetry:
        from repro.obs.telemetry import TelemetrySampler

        telemetry = TelemetrySampler(
            path=args.telemetry,
            interval=args.telemetry_interval,
            source="batch",
        )
    ok, plan = _setup_chaos(args, console, registry)
    if not ok:
        return 2
    runner = BatchRunner(
        jobs=args.jobs,
        budget=args.time_limit,
        cache=args.cache,
        store=args.store,
        resume=args.resume,
        retries=args.retries,
        use_processes=not args.in_process,
        tracer=tracer,
        metrics=registry,
        lease_ttl=args.lease_ttl,
        lease_attempts=args.lease_attempts,
        telemetry=telemetry,
    )
    console.info(
        f"batch: {len(requests)} job(s) on {args.jobs} lane(s)"
        + (f", budget {args.time_limit:g}s" if args.time_limit else "")
    )
    try:
        results = asyncio.run(runner.run(requests))
    finally:
        if tracer is not None:
            tracer.close()
        if telemetry is not None:
            telemetry.close()  # run() already sampled + stopped the loop
        if registry is not None and args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(registry.to_json(indent=2))
        _write_chaos_log(args, plan, console)
        _write_oblog(args, tracer, console)
    # Per-job summary: one line per manifest row, every row accounted for.
    counts = {0: 0, 1: 0, 2: 0}
    for result in results:
        counts[result.exit_code] += 1
        line = f"[{result.status:>9}] {result.report.summary()}"
        if result.error and args.verbose:
            line += f" error={result.error}"
        console.result(line)
    console.result(
        f"batch summary: {counts[0]} equivalent, "
        f"{counts[1]} not equivalent, {counts[2]} unknown"
    )
    if registry is not None:
        hits = registry.counter("service.cache.hits")
        misses = registry.counter("service.cache.misses")
        if hits or misses:
            console.info(f"proof cache: {hits:g} hit(s), {misses:g} miss(es)")
    if args.trace:
        console.info(f"wrote trace to {args.trace} (see: repro profile {args.trace})")
    if args.metrics_out:
        console.info(f"wrote metrics to {args.metrics_out}")
    if args.telemetry:
        console.info(f"wrote telemetry snapshots to {args.telemetry}")
    # The batch exit code mirrors the per-job contract: any refutation
    # dominates (1), else any undecided job (2), else success (0).
    if counts[1]:
        return 1
    if counts[2]:
        return 2
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import sys

    from repro.obs.console import Console
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer
    from repro.service import BatchRunner

    # stdout is the JSONL protocol channel; human chatter goes to stderr.
    console = Console(
        quiet=args.quiet, verbose=args.verbose, stream=sys.stderr
    )
    if args.prom_port is not None and not args.tcp:
        console.error("--prom-port requires --tcp")
        return 2
    tracer = Tracer(path=args.trace, meta={"command": "serve"}) if args.trace else None
    registry = (
        MetricsRegistry()
        if (
            args.metrics_out
            or args.chaos
            or args.telemetry
            or args.prom_port is not None
        )
        else None
    )
    telemetry = None
    if args.telemetry:
        from repro.obs.telemetry import TelemetrySampler

        telemetry = TelemetrySampler(
            path=args.telemetry,
            interval=args.telemetry_interval,
            source="serve",
        )
    ok, plan = _setup_chaos(args, console, registry)
    if not ok:
        return 2
    runner = BatchRunner(
        jobs=args.jobs,
        budget=args.time_limit,
        cache=args.cache,
        store=args.store,
        resume=args.resume,
        retries=args.retries,
        use_processes=not args.in_process,
        tracer=tracer,
        metrics=registry,
        lease_ttl=args.lease_ttl,
        lease_attempts=args.lease_attempts,
        telemetry=telemetry,
    )
    try:
        if args.tcp:
            from repro.service import TcpServer, parse_hostport

            try:
                host, port = parse_hostport(args.tcp)
            except ValueError as exc:
                console.error(f"bad --tcp address: {exc}")
                return 2
            server = TcpServer(
                runner,
                host,
                port,
                read_timeout=args.read_timeout,
                queue_maxsize=args.queue_size,
                prom_port=args.prom_port,
            )

            async def _serve_tcp() -> int:
                await server.start()
                console.info(
                    f"serve: listening on {server.host}:{server.port} "
                    f"({server.local_lanes} local lane(s); SIGTERM drains)"
                )
                if server.prom_port is not None:
                    console.info(
                        "serve: Prometheus metrics on "
                        f"http://{server.host}:{server.prom_port}/metrics"
                    )
                return await server.run()

            emitted = asyncio.run(_serve_tcp())
        else:
            console.info(
                f"serve: reading JSONL jobs from stdin ({args.jobs} lane(s))"
            )
            emitted = asyncio.run(
                runner.serve(
                    sys.stdin, sys.stdout, queue_maxsize=args.queue_size
                )
            )
    finally:
        if tracer is not None:
            tracer.close()
        if telemetry is not None:
            telemetry.close()
        if registry is not None and args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(registry.to_json(indent=2))
        _write_chaos_log(args, plan, console)
    if args.telemetry:
        console.info(f"wrote telemetry snapshots to {args.telemetry}")
    console.info(f"serve: emitted {emitted} result(s)")
    return 0


def _cmd_worker(args) -> int:
    import asyncio
    import sys

    from repro.obs.console import Console
    from repro.service import parse_hostport, run_worker

    console = Console(
        quiet=args.quiet, verbose=args.verbose, stream=sys.stderr
    )
    ok, _ = _setup_chaos(args, console)
    if not ok:
        return 2
    try:
        host, port = parse_hostport(args.address)
    except ValueError as exc:
        console.error(f"bad address: {exc}")
        return 2
    console.info(f"worker: connecting to {host}:{port} ({args.lanes} lane(s))")
    try:
        solved = asyncio.run(
            run_worker(
                host,
                port,
                lanes=args.lanes,
                use_processes=not args.in_process,
            )
        )
    except (ConnectionError, OSError) as exc:
        console.error(f"worker: connection failed: {exc}")
        return 2
    console.info(f"worker: solved {solved} job(s); server closed")
    return 0


def _cmd_status(args) -> int:
    import asyncio
    import json

    from repro.obs.telemetry import render_snapshot
    from repro.service import parse_hostport

    console = _console(args)
    try:
        host, port = parse_hostport(args.address)
    except ValueError as exc:
        console.error(f"bad address: {exc}")
        return 2

    async def _observe() -> int:
        reader, writer = await asyncio.open_connection(host, port)
        hello = {
            "type": "hello",
            "role": "status",
            "watch": bool(args.watch),
            "interval": args.interval,
        }
        writer.write((json.dumps(hello) + "\n").encode("utf-8"))
        await writer.drain()
        seen = 0
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                try:
                    snapshot = json.loads(raw.decode("utf-8", "replace"))
                except ValueError:
                    continue
                if not isinstance(snapshot, dict):
                    continue
                seen += 1
                if args.json:
                    console.result(json.dumps(snapshot, sort_keys=True))
                else:
                    console.result(render_snapshot(snapshot))
                if not args.watch:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if not seen:
            console.error(f"status: no snapshot from {host}:{port}")
            return 2
        return 0

    try:
        return asyncio.run(_observe())
    except (ConnectionError, OSError) as exc:
        console.error(f"status: connection failed: {exc}")
        return 2
    except KeyboardInterrupt:
        # ^C out of --watch is a normal way to leave the dashboard.
        return 0


def _cmd_bench_compare(args) -> int:
    from repro.bench.compare import (
        compare_reports,
        load_report,
        parse_thresholds,
        render_comparison,
    )

    console = _console(args)
    try:
        thresholds = parse_thresholds(args.threshold)
        baseline = load_report(args.baseline)
        fresh = load_report(args.fresh)
    except (OSError, ValueError) as exc:
        console.error(f"bench compare: {exc}")
        return 2
    deltas, failures = compare_reports(baseline, fresh, thresholds)
    console.result(render_comparison(deltas, failures))
    if args.json:
        import json as _json

        with open(args.json, "w", encoding="utf-8") as handle:
            _json.dump(
                {
                    "baseline": args.baseline,
                    "fresh": args.fresh,
                    "passed": not failures,
                    "failures": failures,
                    "deltas": [d.to_dict() for d in deltas],
                },
                handle,
                indent=2,
                sort_keys=True,
            )
        console.info(f"wrote comparison to {args.json}")
    return 1 if failures else 0


def _cmd_profile(args) -> int:
    from repro.obs.profile import render_profile
    from repro.obs.trace import export_chrome_trace, read_events

    console = _console(args)
    events = read_events(args.trace)
    if not events:
        console.error(f"no events in {args.trace}")
        return 1
    if args.validate:
        from repro.obs.schema import validate_events

        errors = validate_events(events)
        if errors:
            console.error(f"{len(errors)} schema violation(s) in {args.trace}:")
            for err in errors[:20]:
                console.error(f"  {err}")
            return 1
        console.info(f"{len(events)} events: schema OK")
    console.result(render_profile(events, top=args.top))
    if args.chrome:
        n = export_chrome_trace(events, args.chrome)
        console.info(
            f"wrote {n} Chrome trace_event(s) to {args.chrome} "
            "(open in chrome://tracing or ui.perfetto.dev)"
        )
    return 0


def _cmd_retime(args) -> int:
    from repro.retime.apply import retime_min_area, retime_min_period

    console = _console(args)
    circuit = parse_blif_file(args.circuit)
    validate_circuit(circuit)
    if args.min_area:
        retimed, period = retime_min_area(circuit, period=args.period)
        if retimed is None:
            console.error(f"infeasible at period {period}")
            return 1
        console.result(f"min-area retiming at period {period}: "
                       f"{circuit.num_latches()} -> {retimed.num_latches()} latches")
    else:
        retimed, old, new = retime_min_period(circuit)
        console.result(f"min-period retiming: period {old} -> {new}, "
                       f"{circuit.num_latches()} -> {retimed.num_latches()} latches")
    validate_circuit(retimed)
    Path(args.output).write_text(write_blif(retimed))
    console.info(f"wrote {args.output}")
    return 0


def _cmd_synth(args) -> int:
    from repro.synth.script import optimize_sequential_delay
    from repro.synth.depth import circuit_depth
    from repro.synth.network import node_literals

    console = _console(args)
    circuit = parse_blif_file(args.circuit)
    validate_circuit(circuit)
    before = (circuit_depth(circuit), node_literals(circuit))
    optimised = optimize_sequential_delay(circuit, effort=args.effort)
    validate_circuit(optimised)
    after = (circuit_depth(optimised), node_literals(optimised))
    console.result(
        f"depth: {before[0]} -> {after[0]}, literals: {before[1]} -> {after[1]}"
    )
    Path(args.output).write_text(write_blif(optimised))
    console.info(f"wrote {args.output}")
    return 0


def _cmd_expose(args) -> int:
    from repro.core.expose import choose_latches_to_expose, prepare_circuit

    console = _console(args)
    circuit = parse_blif_file(args.circuit)
    validate_circuit(circuit)
    strategy = "weighted" if args.weighted else "count"
    exposed, remodel = choose_latches_to_expose(
        circuit, use_unateness=not args.no_unate, strategy=strategy
    )
    total = circuit.num_latches()
    pct = 100 * len(exposed) / total if total else 0
    console.result(f"latches: {total}")
    console.result(f"to expose: {len(exposed)} ({pct:.0f}%): {sorted(exposed)}")
    console.result(
        f"to remodel (positive unate): {len(remodel)}: {sorted(remodel)}"
    )
    if args.output:
        prepared = prepare_circuit(circuit, use_unateness=not args.no_unate)
        Path(args.output).write_text(write_blif(prepared.circuit))
        console.info(f"wrote prepared (acyclic) circuit to {args.output}")
    return 0


def _cmd_stats(args) -> int:
    from repro.synth.depth import circuit_depth
    from repro.synth.techmap import mapped_stats, tech_map

    console = _console(args)
    circuit = parse_blif_file(args.circuit)
    validate_circuit(circuit)
    console.result(str(circuit))
    console.result(f"unit-delay depth: {circuit_depth(circuit)}")
    mapped = tech_map(circuit)
    console.result(
        f"mapped ({{INV, NAND2, NOR2}}, fanout<=4): {mapped_stats(mapped)}"
    )
    return 0


def _cmd_table1(args) -> int:
    from repro.flows.table1 import main as table1_main

    forwarded = []
    if args.quick:
        forwarded.append("--quick")
    if args.jobs != 1:
        forwarded.extend(["--jobs", str(args.jobs)])
    if args.cache:
        forwarded.extend(["--cache", args.cache])
    if args.no_refine:
        forwarded.append("--no-refine")
    if args.no_preprocess:
        forwarded.append("--no-preprocess")
    if args.no_share_learned:
        forwarded.append("--no-share-learned")
    if args.time_limit is not None:
        forwarded.extend(["--time-limit", str(args.time_limit)])
    if args.bdd_node_limit is not None:
        forwarded.extend(["--bdd-node-limit", str(args.bdd_node_limit)])
    if args.on_error != "skip":
        forwarded.extend(["--on-error", args.on_error])
    if args.checkpoint:
        forwarded.extend(["--checkpoint", args.checkpoint])
    if args.resume:
        forwarded.append("--resume")
    if args.quiet:
        forwarded.append("--quiet")
    if args.verbose:
        forwarded.append("--verbose")
    if args.trace:
        forwarded.extend(["--trace", args.trace])
    if args.metrics_out:
        forwarded.extend(["--metrics-out", args.metrics_out])
    return table1_main(forwarded)


def _cmd_table2(args) -> int:
    from repro.flows.table2 import main as table2_main

    forwarded = []
    if args.quick:
        forwarded.append("--quick")
    if args.on_error != "skip":
        forwarded.extend(["--on-error", args.on_error])
    if args.quiet:
        forwarded.append("--quiet")
    if args.verbose:
        forwarded.append("--verbose")
    if args.trace:
        forwarded.extend(["--trace", args.trace])
    return table2_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sequential equivalence checking via combinational "
        "verification (Ranjan et al., DATE 1999)",
    )
    # Shared verbosity flags; every subcommand prints through the same
    # Console so --quiet / --verbose mean the same thing everywhere.
    verbosity = argparse.ArgumentParser(add_help=False)
    verbosity.add_argument(
        "--quiet",
        action="store_true",
        help="suppress progress lines (results still print)",
    )
    verbosity.add_argument(
        "--verbose", action="store_true", help="extra diagnostics"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "verify",
        parents=[verbosity],
        help="check sequential equivalence of two BLIF circuits",
    )
    p.add_argument("golden")
    p.add_argument("revised")
    p.add_argument("--rewrite", action="store_true", help="enable the Eq. 5 event rewrite")
    p.add_argument("--no-unate", action="store_true", help="skip unate feedback remodelling")
    p.add_argument("--vcd", default=None, help="dump a counterexample waveform to this VCD file")
    p.add_argument("--report", default=None, help="write a Markdown verification report")
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the CEC SAT sweep (default 1: serial)",
    )
    p.add_argument(
        "--cec-cache",
        default=None,
        help="persistent CEC proof-cache file (reused across runs)",
    )
    p.add_argument(
        "--no-refine",
        action="store_true",
        help="disable counterexample-guided refinement in the CEC sweep",
    )
    p.add_argument(
        "--no-preprocess",
        action="store_true",
        help="disable pre-sweep AIG rewriting of the CEC miter",
    )
    p.add_argument(
        "--no-share-learned",
        action="store_true",
        help="disable learned-clause and assumption-core pooling "
        "across sweep workers",
    )
    p.add_argument(
        "--time-limit",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock budget in seconds; exhaustion yields verdict "
        "'unknown' (exit code 2) instead of an open-ended run",
    )
    p.add_argument(
        "--bdd-node-limit",
        type=int,
        default=None,
        metavar="N",
        help="live-node cap for the engine's bounded BDD attempts",
    )
    p.add_argument(
        "--engines",
        default=None,
        metavar="NAMES",
        help="comma-separated CEC engine portfolio (e.g. 'sim,sat'); "
        "default: the dispatch policy picks (structural,sim,bdd,sat)",
    )
    p.add_argument(
        "--dispatch-policy",
        default="cascade",
        metavar="NAME",
        help="engine dispatch policy: 'cascade' (fixed ladder, default) "
        "or 'heuristic' (feature/outcome-driven ordering)",
    )
    p.add_argument(
        "--dispatch-store",
        default=None,
        metavar="FILE",
        help="persistent per-engine outcome store; repeated runs train "
        "metrics-driven dispatch policies",
    )
    p.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a structured JSONL trace of the run (see: repro profile)",
    )
    p.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the run's metrics registry as JSON",
    )
    p.add_argument(
        "--oblog",
        default=None,
        metavar="FILE",
        help="write per-obligation feature records (JSONL): cone size, "
        "class width, cascade stage, engine, verdict, seconds",
    )
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "profile",
        parents=[verbosity],
        help="per-stage hotspot report from a --trace JSONL file",
    )
    p.add_argument("trace", help="JSONL trace written by a --trace run")
    p.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="how many slowest obligations to list (default 10)",
    )
    p.add_argument(
        "--chrome",
        default=None,
        metavar="OUT",
        help="also export a Chrome trace_event JSON file",
    )
    p.add_argument(
        "--validate",
        action="store_true",
        help="schema-check every event before profiling",
    )
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("retime", parents=[verbosity], help="retime a BLIF circuit")
    p.add_argument("circuit")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--min-area", action="store_true", help="constrained min-area instead of min-period")
    p.add_argument("--period", type=int, default=None, help="target period for --min-area")
    p.set_defaults(func=_cmd_retime)

    p = sub.add_parser(
        "synth", parents=[verbosity], help="run the delay-oriented synthesis script"
    )
    p.add_argument("circuit")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--effort", choices=["low", "medium", "high"], default="medium")
    p.set_defaults(func=_cmd_synth)

    p = sub.add_parser(
        "expose",
        parents=[verbosity],
        help="feedback analysis: latches to expose/remodel",
    )
    p.add_argument("circuit")
    p.add_argument("-o", "--output", default=None, help="write the prepared acyclic circuit")
    p.add_argument("--weighted", action="store_true", help="penalty-aware selection (Sec. 9)")
    p.add_argument("--no-unate", action="store_true")
    p.set_defaults(func=_cmd_expose)

    p = sub.add_parser(
        "stats",
        parents=[verbosity],
        help="area/delay report after technology mapping",
    )
    p.add_argument("circuit")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser(
        "table1", parents=[verbosity], help="regenerate the paper's Table 1"
    )
    p.add_argument("--quick", action="store_true")
    p.add_argument(
        "--jobs", type=int, default=1, help="CEC sweep worker processes"
    )
    p.add_argument(
        "--cache", default=None, help="persistent CEC proof-cache file"
    )
    p.add_argument(
        "--no-refine",
        action="store_true",
        help="disable counterexample-guided refinement in the CEC sweep",
    )
    p.add_argument(
        "--no-preprocess",
        action="store_true",
        help="disable pre-sweep AIG rewriting of the CEC miter",
    )
    p.add_argument(
        "--no-share-learned",
        action="store_true",
        help="disable learned-clause and assumption-core pooling "
        "across sweep workers",
    )
    p.add_argument(
        "--time-limit",
        type=float,
        default=None,
        metavar="S",
        help="per-row verification budget (seconds); TIMEOUT rows, no hangs",
    )
    p.add_argument(
        "--bdd-node-limit",
        type=int,
        default=None,
        metavar="N",
        help="live-node cap for the engine's bounded BDD attempts",
    )
    p.add_argument(
        "--on-error",
        choices=("skip", "abort"),
        default="skip",
        help="failing rows: record ERROR and continue (skip) or stop (abort)",
    )
    p.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help="record finished rows into FILE after each row",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="replay rows already in --checkpoint instead of recomputing",
    )
    p.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a structured JSONL trace of the run",
    )
    p.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the run's aggregated metrics registry as JSON",
    )
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser(
        "batch",
        parents=[verbosity],
        help="verify a manifest of circuit pairs on the batch service",
    )
    p.add_argument("manifest", help="JSON manifest of circuit-pair jobs")
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="concurrent worker lanes (default 1)",
    )
    p.add_argument(
        "--time-limit",
        type=float,
        default=None,
        metavar="S",
        help="batch wall-clock budget; each job gets an even slice of "
        "the remaining time (exhaustion = verdict 'unknown')",
    )
    p.add_argument(
        "--cache",
        default=None,
        metavar="FILE",
        help="shared persistent CEC proof cache, warmed across jobs",
    )
    p.add_argument(
        "--store",
        default=None,
        metavar="FILE",
        help="append-only JSONL result store (one line per finished job)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="replay already-decided pairs from --store instead of re-running",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="extra in-worker attempts for a failing job (default 2)",
    )
    p.add_argument(
        "--in-process",
        action="store_true",
        help="run jobs on threads in this process instead of a process pool",
    )
    p.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="S",
        help="lease TTL per dispatched job; a hung worker loses its "
        "lease and the job is requeued (default: leases off)",
    )
    p.add_argument(
        "--lease-attempts",
        type=int,
        default=3,
        metavar="N",
        help="lease expiries before a job is quarantined as poison "
        "(default 3)",
    )
    p.add_argument(
        "--engines",
        default=None,
        metavar="NAMES",
        help="override every job's CEC engine portfolio "
        "(comma-separated adapter names, e.g. 'sim,sat')",
    )
    p.add_argument(
        "--dispatch-policy",
        default=None,
        metavar="NAME",
        help="override every job's engine dispatch policy "
        "('cascade' or 'heuristic')",
    )
    p.add_argument(
        "--dispatch-store",
        default=None,
        metavar="FILE",
        help="per-engine outcome store shared by every job; repeated "
        "batch runs train metrics-driven dispatch policies",
    )
    p.add_argument(
        "--chaos",
        default=None,
        metavar="PLAN",
        help="arm a deterministic fault-injection plan (JSON) for this run",
    )
    p.add_argument(
        "--chaos-log",
        default=None,
        metavar="FILE",
        help="write the chaos firing log (JSON) after the run",
    )
    p.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a structured JSONL trace of the run",
    )
    p.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the run's aggregated metrics registry as JSON",
    )
    p.add_argument(
        "--telemetry",
        default=None,
        metavar="FILE",
        help="record periodic service-health snapshots (JSONL time-series)",
    )
    p.add_argument(
        "--telemetry-interval",
        type=float,
        default=1.0,
        metavar="S",
        help="seconds between telemetry snapshots (default 1)",
    )
    p.add_argument(
        "--oblog",
        default=None,
        metavar="FILE",
        help="write per-obligation feature records (JSONL)",
    )
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser(
        "serve",
        parents=[verbosity],
        help="long-running verification service: JSONL jobs on stdin, "
        "JSONL results on stdout",
    )
    p.add_argument("--jobs", type=int, default=1, help="concurrent worker lanes")
    p.add_argument(
        "--time-limit",
        type=float,
        default=None,
        metavar="S",
        help="service budget; jobs receive slices of the remaining time",
    )
    p.add_argument(
        "--cache", default=None, metavar="FILE", help="shared CEC proof cache"
    )
    p.add_argument(
        "--store", default=None, metavar="FILE", help="JSONL result store"
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="answer already-decided pairs from --store without re-running",
    )
    p.add_argument(
        "--retries", type=int, default=2, metavar="N", help="in-worker retries"
    )
    p.add_argument(
        "--in-process",
        action="store_true",
        help="run jobs on threads instead of a process pool",
    )
    p.add_argument(
        "--queue-size",
        type=int,
        default=0,
        metavar="N",
        help="bound the intake queue (0 = unbounded): backpressure on "
        "stdin / client sockets",
    )
    p.add_argument(
        "--tcp",
        default=None,
        metavar="HOST:PORT",
        help="serve the JSONL protocol over TCP instead of stdio; "
        "accepts client and remote-worker connections",
    )
    p.add_argument(
        "--read-timeout",
        type=float,
        default=300.0,
        metavar="S",
        help="per-connection read timeout for --tcp (default 300)",
    )
    p.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="S",
        help="lease TTL per dispatched job (default: leases off locally; "
        "remote workers always run leased)",
    )
    p.add_argument(
        "--lease-attempts",
        type=int,
        default=3,
        metavar="N",
        help="lease expiries before quarantining a job as poison",
    )
    p.add_argument(
        "--chaos",
        default=None,
        metavar="PLAN",
        help="arm a deterministic fault-injection plan (JSON)",
    )
    p.add_argument(
        "--chaos-log",
        default=None,
        metavar="FILE",
        help="write the chaos firing log (JSON) after the run",
    )
    p.add_argument(
        "--trace", default=None, metavar="FILE", help="write a JSONL trace"
    )
    p.add_argument(
        "--metrics-out", default=None, metavar="FILE", help="write metrics JSON"
    )
    p.add_argument(
        "--telemetry",
        default=None,
        metavar="FILE",
        help="record periodic service-health snapshots (JSONL time-series)",
    )
    p.add_argument(
        "--telemetry-interval",
        type=float,
        default=1.0,
        metavar="S",
        help="seconds between telemetry snapshots (default 1)",
    )
    p.add_argument(
        "--prom-port",
        type=int,
        default=None,
        metavar="N",
        help="with --tcp: also serve Prometheus text metrics on this "
        "port (0 = pick a free one)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "worker",
        parents=[verbosity],
        help="connect to a `repro serve --tcp` server and solve its jobs",
    )
    p.add_argument("address", metavar="HOST:PORT", help="server to join")
    p.add_argument(
        "--lanes", type=int, default=1, help="concurrent jobs to accept"
    )
    p.add_argument(
        "--in-process",
        action="store_true",
        help="solve on threads instead of a process pool",
    )
    p.add_argument(
        "--chaos",
        default=None,
        metavar="PLAN",
        help="arm a fault-injection plan in this worker",
    )
    p.set_defaults(func=_cmd_worker)

    p = sub.add_parser(
        "status",
        parents=[verbosity],
        help="live fleet dashboard for a running `repro serve --tcp`",
    )
    p.add_argument("address", metavar="HOST:PORT", help="service to observe")
    p.add_argument(
        "--watch",
        action="store_true",
        help="keep streaming snapshots until ^C (one-shot by default)",
    )
    p.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="refresh period for --watch (default 2)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print raw snapshot JSON lines instead of the dashboard",
    )
    p.set_defaults(func=_cmd_status)

    p = sub.add_parser(
        "bench",
        help="benchmark utilities (see `repro bench compare`)",
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)
    p = bench_sub.add_parser(
        "compare",
        parents=[verbosity],
        help="diff a fresh benchmark report against the checked-in "
        "baseline; exit 1 on regression",
    )
    p.add_argument(
        "fresh", help="fresh report JSON (benchmarks/bench_cec.py -o)"
    )
    p.add_argument(
        "--baseline",
        default="BENCH_cec.json",
        metavar="FILE",
        help="baseline report to compare against (default BENCH_cec.json)",
    )
    p.add_argument(
        "--threshold",
        action="append",
        default=None,
        metavar="METRIC=PCT",
        help="per-metric regression threshold in percent over baseline "
        "(repeatable; defaults: sat_queries=20, seconds=20)",
    )
    p.add_argument(
        "--json",
        default=None,
        metavar="OUT",
        help="also write the comparison as machine-readable JSON",
    )
    p.set_defaults(func=_cmd_bench_compare)

    p = sub.add_parser(
        "table2", parents=[verbosity], help="regenerate the paper's Table 2"
    )
    p.add_argument("--quick", action="store_true")
    p.add_argument(
        "--on-error",
        choices=("skip", "abort"),
        default="skip",
        help="failing rows: record ERROR and continue (skip) or stop (abort)",
    )
    p.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a structured JSONL trace of the run",
    )
    p.set_defaults(func=_cmd_table2)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
