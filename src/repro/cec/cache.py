"""Persistent proof cache for the CEC engine.

Every sweep candidate and every output pair the engine decides is a fact
about one self-contained object: the candidate pair's combined fanin cone
(AND-node clauses are functionally determined, so clauses outside the cone
can never participate in a cone-local UNSAT proof or model).  Keying
verdicts by :meth:`repro.aig.aig.AIG.pair_cone_key` — a canonical,
name-independent structural hash of that cone — therefore lets a verdict
proven once be replayed anywhere the same structure reappears: later
classes of the same miter, the next circuit of a Table 1 run, or a whole
separate process reusing the cache file (the cross-check reuse idea of
Goldberg's CRR, arXiv:1507.02297).

Only decided verdicts are stored (``"eq"`` / ``"neq"``); conflict-limited
UNKNOWN outcomes are not facts and are never cached.

The on-disk format is a versioned JSON envelope,
``{"version": N, "proofs": {key: verdict}}``.  Loads are paranoid — a
poisoned cache must degrade to cache misses, never to wrong verdicts:

* files that fail to parse or lack the envelope shape are **quarantined**
  — renamed to ``<path>.corrupt`` (a one-time ``RuntimeWarning`` points
  at it, and ``cec.cache.corrupt_files`` counts it) so the evidence
  survives for diagnosis instead of being silently overwritten by the
  next save;
* files carrying a different schema version are ignored wholesale (an
  incompatible older format is *not* corruption, and *not* guessed at);
* entries whose value is not a valid verdict are dropped individually.

Saves merge with the file's current content and write via a temp file +
``os.replace``, so concurrent flows sharing one cache file lose at worst
each other's latest increment, never the file.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from typing import Dict, Optional, Union

from repro.runtime import chaos

__all__ = ["ProofCache", "EQ", "NEQ", "SCHEMA_VERSION"]

EQ = "eq"
NEQ = "neq"

_VALID = frozenset({EQ, NEQ})

#: On-disk schema version.  Bump on any incompatible format change; files
#: written under a different version are ignored on load rather than
#: misread (version 1 is the first enveloped format — the seed's bare
#: ``{key: verdict}`` files predate the envelope and are likewise ignored).
SCHEMA_VERSION = 1


class ProofCache:
    """A ``key -> verdict`` store with optional JSON persistence."""

    def __init__(self, path: Optional[Union[str, os.PathLike]] = None) -> None:
        self.path = os.fspath(path) if path is not None else None
        self._data: Dict[str, str] = {}
        self._dirty = False
        # Optional repro.obs.metrics.MetricsRegistry (see attach_metrics).
        self.metrics = None
        #: backing files quarantined as corrupt over this instance's life.
        self.corrupt_files = 0
        if self.path is not None:
            self._data.update(self._read_file(self.path))

    def attach_metrics(self, registry) -> None:
        """Attach a :class:`repro.obs.metrics.MetricsRegistry`.

        Records the entry count at attach time (``cec.cache.entries``)
        and any load-time quarantines (``cec.cache.corrupt_files``), and
        counts persisted saves (``cec.cache.saves``); the hit/miss
        traffic itself is counted by the engine, which knows *why* it
        consulted the cache.
        """
        self.metrics = registry
        registry.set_gauge("cec.cache.entries", len(self._data))
        if self.corrupt_files:
            registry.inc("cec.cache.corrupt_files", self.corrupt_files)

    @staticmethod
    def coerce(
        cache: Union[None, str, os.PathLike, "ProofCache"]
    ) -> Optional["ProofCache"]:
        """Accept a cache instance, a file path, or None."""
        if cache is None or isinstance(cache, ProofCache):
            return cache
        return ProofCache(cache)

    def _read_file(self, path: str) -> Dict[str, str]:
        """Load and validate a cache file; corruption quarantines it.

        A file that exists but cannot be a proof cache (unparsable JSON,
        wrong envelope shape) is renamed to ``<path>.corrupt`` and
        reported; the load degrades to an empty cache either way.  A
        file from a *different schema version* is merely ignored — old
        formats are incompatible, not damaged.
        """
        chaos.fire("cache.load", path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except OSError:
            return {}
        except ValueError:
            self._quarantine(path, "unparsable JSON")
            return {}
        if not isinstance(raw, dict):
            self._quarantine(path, "root is not an object")
            return {}
        if raw.get("version") != SCHEMA_VERSION:
            return {}  # unknown or missing schema: ignore, don't misread
        proofs = raw.get("proofs")
        if not isinstance(proofs, dict):
            self._quarantine(path, "'proofs' is not an object")
            return {}
        return {
            str(k): str(v) for k, v in proofs.items() if str(v) in _VALID
        }

    def _quarantine(self, path: str, why: str) -> None:
        """Set a corrupt cache file aside as ``<path>.corrupt``."""
        self.corrupt_files += 1
        if self.metrics is not None:
            self.metrics.inc("cec.cache.corrupt_files")
        quarantined = path + ".corrupt"
        try:
            os.replace(path, quarantined)
        except OSError:
            quarantined = None  # unlinkable (permissions); still degrade
        warnings.warn(
            f"corrupt proof cache {path!r} ({why}): "
            + (
                f"quarantined as {quarantined!r}"
                if quarantined
                else "could not quarantine"
            )
            + "; continuing with an empty cache",
            RuntimeWarning,
            stacklevel=3,
        )

    def get(self, key: str) -> Optional[str]:
        """Cached verdict for a pair-cone key, or None."""
        return self._data.get(key)

    def put(self, key: str, verdict: str) -> None:
        """Record a decided verdict."""
        if verdict not in _VALID:
            raise ValueError(f"uncacheable verdict {verdict!r}")
        if self._data.get(key) != verdict:
            self._data[key] = verdict
            self._dirty = True

    def save(self) -> None:
        """Merge into the backing file atomically (no-op when unbacked)."""
        if self.path is None or not self._dirty:
            return
        chaos.fire("cache.save", self.path)
        merged = self._read_file(self.path)
        merged.update(self._data)
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump({"version": SCHEMA_VERSION, "proofs": merged}, handle)
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self._data = merged
        self._dirty = False
        if self.metrics is not None:
            self.metrics.inc("cec.cache.saves")
            self.metrics.set_gauge("cec.cache.entries", len(self._data))

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __repr__(self) -> str:
        backing = self.path or "memory"
        return f"ProofCache({len(self._data)} proofs, {backing})"
