"""Pluggable CEC proof engines: the adapter protocol plus the built-ins.

Importing this package registers the four built-in adapters —
``structural``, ``sim``, ``bdd``, ``sat`` — with the registry in
:mod:`repro.cec.engines.base`.  The dispatch layer that orders them per
obligation lives in :mod:`repro.cec.dispatch`.
"""

from repro.cec.engines.base import (
    DEFAULT_BDD_NODE_LIMIT,
    PASS,
    UNKNOWN,
    EngineAdapter,
    EngineContext,
    EngineOutcome,
    Obligation,
    available_engines,
    extract_counterexample,
    get_engine,
    lit_word,
    register_engine,
    resolve_portfolio,
    validate_counterexample,
)
from repro.cec.engines.bdd import BddEngine, bdd_decide_pair
from repro.cec.engines.sat import SatEngine
from repro.cec.engines.sim import SimEngine, sim_refute_pair
from repro.cec.engines.structural import StructuralEngine

__all__ = [
    "DEFAULT_BDD_NODE_LIMIT",
    "PASS",
    "UNKNOWN",
    "EngineAdapter",
    "EngineContext",
    "EngineOutcome",
    "Obligation",
    "available_engines",
    "get_engine",
    "register_engine",
    "resolve_portfolio",
    "extract_counterexample",
    "validate_counterexample",
    "lit_word",
    "sim_refute_pair",
    "bdd_decide_pair",
    "StructuralEngine",
    "SimEngine",
    "BddEngine",
    "SatEngine",
]
