"""The engine-adapter protocol: one pluggable proof procedure per name.

The CEC engine's output checks used to be a fixed ladder inlined into
``cec/engine.py`` (structural hash → simulation refutation → bounded BDD
→ bounded SAT).  This package turns each rung into an
:class:`EngineAdapter` — a named, registered object that tries to decide
one :class:`Obligation` against a shared :class:`EngineContext` — so the
cascade becomes *data*: an ordered portfolio of adapter names, reordered
per obligation by a dispatch policy (:mod:`repro.cec.dispatch`).

Contract of an adapter (narrative form in ``docs/API.md``):

* :meth:`EngineAdapter.decide` returns an :class:`EngineOutcome` whose
  ``status`` is ``EQ``/``NEQ`` when the engine proved or refuted the
  pair, :data:`PASS` when it cannot decide and the next engine in the
  portfolio should try, or :data:`UNKNOWN` when the whole check must
  stop (resource exhaustion; the runner turns it into the check's
  verdict, with ``outcome.reason`` as the ``REASON_*`` code).
* Budget discipline: adapters read their limits from the context
  (``ctx.sat_limit`` / ``ctx.node_limit`` / ``ctx.budget``) and must
  never block past them.  Wall-clock expiry *between* engines is the
  runner's job, not the adapter's.
* Metrics: adapters count their effort into ``ctx.metrics`` under the
  ``cec.*`` names catalogued in ``docs/OBSERVABILITY.md``.  The
  historical ladder's decision counters (``cec.cascade.<stage>``) are
  incremented *inside* the deciding adapter, exactly once per decided
  obligation, on budgeted and unbudgeted checks alike — so a classic
  run's cascade breakdown matches a budgeted run of the same miter
  (counting used to be gated on ``ctx.budgeted``, which made unbudgeted
  runs report empty breakdowns).  Single-site counting still makes
  double counting (the old two-site ``cec.cascade.sat`` bug)
  structurally impossible.
* NEQ outcomes must carry a counterexample already re-validated against
  the AIG (:func:`validate_counterexample`); the runner trusts it.

Third-party engines register via :func:`register_engine` and become
addressable from every layer (``check_equivalence(engines=[...])``,
``VerifyRequest(engines=[...])``, ``repro verify --engines ...``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cec.cache import EQ, NEQ

__all__ = [
    "DEFAULT_BDD_NODE_LIMIT",
    "EQ",
    "NEQ",
    "PASS",
    "UNKNOWN",
    "Obligation",
    "EngineContext",
    "EngineOutcome",
    "EngineAdapter",
    "register_engine",
    "get_engine",
    "available_engines",
    "resolve_portfolio",
    "extract_counterexample",
    "validate_counterexample",
    "lit_word",
]

#: Node cap for a bounded BDD attempt when the budget does not set one
#: explicitly; small enough that a blow-up costs milliseconds.
DEFAULT_BDD_NODE_LIMIT = 100_000

#: Outcome status: the adapter cannot decide this pair; the runner hands
#: it to the next engine in the portfolio order.
PASS = "pass"
#: Outcome status: stop the portfolio — the check's verdict is UNKNOWN
#: (``EngineOutcome.reason`` says why when the check is budget-governed).
UNKNOWN = "unknown"


@dataclass
class Obligation:
    """One output pair to decide: the unit of work adapters receive.

    ``cache_key`` is the pair's structural cone hash when a proof cache
    is attached (the runner computes it once per pair).  :meth:`cone` is
    the pair's fanin-cone size, computed lazily and cached — it is the
    primary dispatch feature, and the walk only happens when a policy or
    the tracer actually asks for it.
    """

    name: str
    l1: int
    l2: int
    cache_key: Optional[str] = None
    _cone: Optional[int] = field(default=None, repr=False)

    def cone(self, ctx: "EngineContext") -> int:
        """Fanin-cone node count of the pair (lazy, cached)."""
        if self._cone is None:
            self._cone = len(ctx.aig.cone_nodes((self.l1, self.l2)))
        return self._cone


class EngineContext:
    """Shared state one output-check run hands to every adapter.

    Owns the derived resource limits so every adapter prices work the
    same way: ``sat_limit`` folds the caller's conflict limit with the
    budget's, ``node_limit`` is the budget's BDD cap (or the default),
    and ``budgeted`` says whether the check is resource-governed at all.

    ``cores`` is the run's shared :class:`~repro.sat.cores.CoreIndex`
    (when the caller maintains one): the SAT adapter consults it to
    retire assumption sets subsumed by an already-known core without a
    solver call, and feeds every fresh core back into it.

    :meth:`signature` lazily computes (and caches) the random-simulation
    words the sim adapter refutes from, so portfolios without a sim stage
    never pay for them.
    """

    def __init__(
        self,
        *,
        aig,
        solver,
        lit2cnf,
        proof_cache,
        metrics,
        tracer,
        budget,
        conflict_limit: Optional[int],
        sim_width: int,
        seed: int,
        cores=None,
    ) -> None:
        self.aig = aig
        self.solver = solver
        self.lit2cnf = lit2cnf
        self.proof_cache = proof_cache
        self.metrics = metrics
        self.tracer = tracer
        self.budget = budget
        self.budgeted = budget is not None
        self.cores = cores
        self.conflict_limit = conflict_limit
        self.sim_width = sim_width
        self.seed = seed
        sat_limit = conflict_limit
        if budget is not None and budget.sat_conflicts is not None:
            sat_limit = (
                budget.sat_conflicts
                if sat_limit is None
                else min(sat_limit, budget.sat_conflicts)
            )
        self.sat_limit = sat_limit
        self.node_limit = (
            budget.bdd_nodes if budget is not None else None
        ) or DEFAULT_BDD_NODE_LIMIT
        self._signature: Optional[Tuple[List[int], int]] = None

    def signature(self) -> Tuple[List[int], int]:
        """Random-simulation ``(words, mask)`` of the miter AIG."""
        if self._signature is None:
            self._signature = self.aig.random_simulate(
                width=self.sim_width, seed=self.seed
            )
        return self._signature


@dataclass
class EngineOutcome:
    """What one adapter concluded about one obligation.

    ``via`` names the mechanism when it differs from the adapter itself
    (the structural adapter reports ``"cache"`` for proof-cache replays);
    the runner uses it for the ``decided_by`` span annotation and to
    skip re-storing verdicts that came *from* the cache.
    """

    status: str  # EQ | NEQ | PASS | UNKNOWN
    counterexample: Optional[Dict[str, bool]] = None
    reason: Optional[str] = None
    via: Optional[str] = None


class EngineAdapter:
    """Base class of pluggable proof engines.

    Subclass, set :attr:`name`, implement :meth:`decide`, and register
    with :func:`register_engine`.  ``proving`` distinguishes real proof
    procedures (which get a ``stage.<name>`` tracer span per attempt and
    feed the dispatch outcome store) from bookkeeping adapters like the
    structural/cache replay, which stay span-free to preserve the
    historical trace shape.
    """

    name: str = ""
    proving: bool = True

    def decide(self, ob: Obligation, ctx: EngineContext) -> EngineOutcome:
        """Attempt one obligation; EQ/NEQ decide it, PASS hands it on.

        UNKNOWN stops the whole check (budget/limit exhaustion).  Must
        never raise on resource exhaustion.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Callable[[], EngineAdapter]] = {}


def register_engine(
    factory: Callable[[], EngineAdapter], name: Optional[str] = None
):
    """Register an adapter factory (usable as a class decorator).

    ``name`` defaults to the factory's ``name`` attribute.  Registering
    an existing name replaces it — deliberate, so a downstream package
    can swap a built-in engine for an instrumented one.
    """
    key = name or getattr(factory, "name", "")
    if not key:
        raise ValueError("engine adapter needs a non-empty name")
    _REGISTRY[str(key)] = factory
    return factory


def available_engines() -> List[str]:
    """Sorted names of every registered engine adapter."""
    return sorted(_REGISTRY)


def get_engine(name: str) -> EngineAdapter:
    """Instantiate the adapter registered under ``name``.

    Raises ``ValueError`` listing the known names on a miss — a typoed
    engine silently meaning "skip that stage" is how wrong expectations
    get trusted.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; available: "
            + ", ".join(available_engines())
        ) from None
    return factory()


def resolve_portfolio(
    names: Union[str, Sequence[str]]
) -> List[EngineAdapter]:
    """Build an ordered adapter list from names (or a comma list)."""
    if isinstance(names, str):
        names = [part.strip() for part in names.split(",") if part.strip()]
    adapters = [get_engine(str(name)) for name in names]
    if not adapters:
        raise ValueError("empty engine portfolio")
    return adapters


# ----------------------------------------------------------------------
# Counterexample plumbing shared by the proving adapters
# ----------------------------------------------------------------------
def extract_counterexample(aig, model: Dict[int, bool], lit2cnf):
    """Named PI assignment from a SAT model (absent PIs default False)."""
    return {
        pi: bool(model.get(lit2cnf(2 * node), False))
        for node, pi in zip(aig.pis, aig.pi_names)
    }


def validate_counterexample(
    aig, cex: Dict[str, bool], l1: int, l2: int, name: str
) -> None:
    """Re-simulate an extracted assignment; raise unless it distinguishes.

    A SAT/BDD model is only a counterexample if replaying it through the
    AIG actually drives the paired output literals apart — anything else
    means the encoding, the model extraction, or a cached merge is
    corrupt, and returning it would be reporting NOT_EQUIVALENT on
    fiction.
    """
    v1, v2 = aig.eval_literals([l1, l2], cex)
    if v1 == v2:
        raise RuntimeError(
            f"extracted counterexample does not distinguish output {name!r}; "
            "CEC engine state is inconsistent"
        )


def lit_word(words: List[int], mask: int, lit: int) -> int:
    """Simulation word of an AIG literal (complement under the mask)."""
    word = words[lit >> 1]
    return (~word & mask) if lit & 1 else word
