"""SAT adapter: decide an output pair on the shared incremental solver.

The final (and only complete) stage of the historical ladder.  Proves
``l1 == l2`` by UNSAT in both assumption directions on the *parent's*
incremental solver — so every merge clause the sweep learned strengthens
these queries.  Budget-governed checks bound each solve with the folded
conflict limit, the budget's propagation limit, and its deadline; an
unknown solver outcome stops the portfolio with the solver's reason
code on budgeted and unbudgeted checks alike (classic checks used to
report a reasonless UNKNOWN, discarding ``last_unknown_reason``).

When the context carries a :class:`~repro.sat.cores.CoreIndex`, each
direction is first checked against the known assumption cores (plus the
solver's root-level values): a subsumed direction is UNSAT by
construction and is retired without a solver call, counted under
``cec.sat.core_retired``; every fresh UNSAT core is fed back into the
index so later pairs benefit.

``cec.cascade.sat`` is incremented here and nowhere else — once per
*decided* obligation (NEQ on a model, EQ after both UNSATs), never on
the unknown path, whether or not the check is budget-governed — fixing
both the old double-site counting in ``_check_outputs_cascade`` and the
later ``ctx.budgeted`` gate that left classic runs with empty cascade
breakdowns.
"""

from __future__ import annotations

from repro.cec.engines.base import (
    EQ,
    NEQ,
    UNKNOWN,
    EngineAdapter,
    EngineContext,
    EngineOutcome,
    Obligation,
    extract_counterexample,
    register_engine,
    validate_counterexample,
)
from repro.runtime.budget import REASON_TIMEOUT
from repro.sat.cores import core_retires

__all__ = ["SatEngine"]


@register_engine
class SatEngine(EngineAdapter):
    name = "sat"

    def decide(self, ob: Obligation, ctx: EngineContext) -> EngineOutcome:
        """Prove both SAT directions UNSAT on the shared solver (EQ),
        extract a validated counterexample on SAT (NEQ), or report
        UNKNOWN when the conflict/propagation budget runs out.
        """
        solver = ctx.solver
        a = ctx.lit2cnf(ob.l1)
        b = ctx.lit2cnf(ob.l2)
        # UNSAT(a != b) in both directions means equal.
        for assumptions in ([a, -b], [-a, b]):
            if core_retires(solver, ctx.cores, assumptions):
                ctx.metrics.inc("cec.sat.core_retired")
                continue
            if ctx.budgeted:
                res = solver.solve(
                    assumptions=assumptions,
                    conflict_limit=ctx.sat_limit,
                    propagation_limit=ctx.budget.sat_propagations,
                    deadline=ctx.budget.deadline,
                )
            else:
                res = solver.solve(
                    assumptions=assumptions,
                    conflict_limit=ctx.conflict_limit,
                )
            ctx.metrics.inc("cec.sat_queries")
            if solver.last_unknown:
                reason = solver.last_unknown_reason or REASON_TIMEOUT
                return EngineOutcome(UNKNOWN, reason=reason)
            if res.satisfiable:
                assert res.model is not None
                cex = extract_counterexample(ctx.aig, res.model, ctx.lit2cnf)
                validate_counterexample(ctx.aig, cex, ob.l1, ob.l2, ob.name)
                ctx.metrics.inc("cec.cascade.sat")
                return EngineOutcome(NEQ, counterexample=cex)
            if ctx.cores is not None and res.core is not None:
                ctx.cores.add(res.core)
        ctx.metrics.inc("cec.cascade.sat")
        return EngineOutcome(EQ)
