"""BDD adapter: decide an output pair with a node-bounded BDD build.

Stage 3 of the historical ladder.  Builds BDDs for the pair's fanin cone
only, with PI node order as the variable order.  Decides EQ or NEQ when
the build fits under the context's node limit; a blow-up past it (or the
budget deadline) passes the pair to the next engine — recorded as
``cec.bdd_blowups`` plus a ``bdd.blowup`` trace instant, unless the
budget itself expired (then falling through is the budget's doing, not
the BDD's).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.bdd.bdd import BDD
from repro.cec.engines.base import (
    EQ,
    NEQ,
    PASS,
    EngineAdapter,
    EngineContext,
    EngineOutcome,
    Obligation,
    register_engine,
    validate_counterexample,
)
from repro.runtime.errors import BddBlowupError

__all__ = ["BddEngine", "bdd_decide_pair"]


def bdd_decide_pair(
    aig,
    l1: int,
    l2: int,
    name: str,
    node_limit: int,
    budget,
    metrics=None,
) -> Optional[Tuple[str, Optional[Dict[str, bool]]]]:
    """Decide an output pair with a node-bounded BDD.

    Returns ``(EQ, None)`` / ``(NEQ, cex)``, or None when the attempt
    blows past ``node_limit`` (or the budget deadline) and the portfolio
    should fall through to the next engine.
    """
    manager = BDD(node_limit=node_limit)
    if metrics is not None:
        manager.attach_metrics(metrics)
    pi_name_of = dict(zip(aig.pis, aig.pi_names))
    node_bdd: Dict[int, int] = {0: manager.ZERO}

    def lit_bdd(lit: int) -> int:
        bdd_node = node_bdd[lit >> 1]
        return manager.apply_not(bdd_node) if lit & 1 else bdd_node

    try:
        cone = sorted(aig.cone_nodes([l1, l2]))
        for count, node in enumerate(cone):
            if budget is not None and (count & 255) == 0 and budget.expired():
                return None
            if node == 0:
                continue
            if aig.is_pi_node(node):
                node_bdd[node] = manager.add_var(pi_name_of[node])
            else:
                f0, f1 = aig.fanins(node)
                node_bdd[node] = manager.apply_and(lit_bdd(f0), lit_bdd(f1))
        b1, b2 = lit_bdd(l1), lit_bdd(l2)
        if b1 == b2:
            return EQ, None
        assignment = manager.pick_minterm(manager.apply_xor(b1, b2)) or {}
    except BddBlowupError:
        return None
    finally:
        manager.flush_metrics()
    cex = {pi: bool(assignment.get(pi, False)) for pi in aig.pi_names}
    validate_counterexample(aig, cex, l1, l2, name)
    return NEQ, cex


@register_engine
class BddEngine(EngineAdapter):
    name = "bdd"

    def decide(self, ob: Obligation, ctx: EngineContext) -> EngineOutcome:
        """Build node-bounded BDDs of both cones: EQ on identical roots,
        NEQ with an extracted cube otherwise; PASS on a node blow-up.
        """
        decided = bdd_decide_pair(
            ctx.aig,
            ob.l1,
            ob.l2,
            ob.name,
            ctx.node_limit,
            ctx.budget,
            ctx.metrics,
        )
        if decided is None:
            if ctx.budget is None or not ctx.budget.expired():
                # fell through on nodes, not time
                ctx.metrics.inc("cec.bdd_blowups")
                ctx.tracer.instant(
                    "bdd.blowup", output=ob.name, node_limit=ctx.node_limit
                )
            return EngineOutcome(PASS)
        ctx.metrics.inc("cec.cascade.bdd")
        status, cex = decided
        return EngineOutcome(status, counterexample=cex)
