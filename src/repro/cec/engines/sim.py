"""Simulation adapter: refute an output pair from signatures alone.

Stage 2 of the historical ladder.  If the pair's random-simulation words
differ, the differing bit column *is* a counterexample — extract the PI
assignment of that column, re-validate it, and no SAT/BDD work is needed
at all.  The adapter can only refute (NEQ) or pass; equal words prove
nothing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cec.engines.base import (
    NEQ,
    PASS,
    EngineAdapter,
    EngineContext,
    EngineOutcome,
    Obligation,
    lit_word,
    register_engine,
    validate_counterexample,
)

__all__ = ["SimEngine", "sim_refute_pair"]


def sim_refute_pair(
    aig,
    l1: int,
    l2: int,
    name: str,
    words: List[int],
    mask: int,
) -> Optional[Dict[str, bool]]:
    """Refute an output pair from simulation words, or return None."""
    diff = (lit_word(words, mask, l1) ^ lit_word(words, mask, l2)) & mask
    if not diff:
        return None
    bit = (diff & -diff).bit_length() - 1
    cex = {
        pi_name: bool((words[pi_node] >> bit) & 1)
        for pi_node, pi_name in zip(aig.pis, aig.pi_names)
    }
    validate_counterexample(aig, cex, l1, l2, name)
    return cex


@register_engine
class SimEngine(EngineAdapter):
    name = "sim"

    def decide(self, ob: Obligation, ctx: EngineContext) -> EngineOutcome:
        """NEQ with a replayed counterexample when the shared simulation
        signature separates the pair's columns; PASS when it cannot.
        """
        words, mask = ctx.signature()
        cex = sim_refute_pair(ctx.aig, ob.l1, ob.l2, ob.name, words, mask)
        if cex is None:
            return EngineOutcome(PASS)
        ctx.metrics.inc("cec.cascade.sim")
        return EngineOutcome(NEQ, counterexample=cex)
