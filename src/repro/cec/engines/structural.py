"""Structural adapter: literal identity and proof-cache replay.

Stage 1 of the historical ladder.  Not a proving engine — it only
recognises pairs the miter's structural hashing already merged onto one
literal, and replays previously-proven EQ verdicts from the persistent
proof cache by structural cone hash.  A cached NEQ is *not* replayed:
the caller needs a fresh model for the counterexample, so only EQ skips
the downstream engines (same asymmetry as the pre-adapter engine).
"""

from __future__ import annotations

from repro.cec.engines.base import (
    EQ,
    PASS,
    EngineAdapter,
    EngineContext,
    EngineOutcome,
    Obligation,
    register_engine,
)

__all__ = ["StructuralEngine"]


@register_engine
class StructuralEngine(EngineAdapter):
    name = "structural"
    proving = False

    def decide(self, ob: Obligation, ctx: EngineContext) -> EngineOutcome:
        """EQ when both literals already coincide or the proof cache
        replays a stored verdict for the pair's cone hash; PASS otherwise.
        """
        if ob.l1 == ob.l2:
            return EngineOutcome(EQ, via="structural")
        if ctx.proof_cache is not None:
            if (
                ob.cache_key is not None
                and ctx.proof_cache.get(ob.cache_key) == EQ
            ):
                ctx.metrics.inc("cec.cache.hits")
                return EngineOutcome(EQ, via="cache")
            ctx.metrics.inc("cec.cache.misses")
        return EngineOutcome(PASS)
