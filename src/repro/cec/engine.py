"""The combinational equivalence-checking engine.

Every proof obligation (sweep candidate or output pair) is resource
governed when a :class:`~repro.runtime.Budget` is supplied: obligations
walk an explicit fallback cascade — structural hash → simulation
refutation → bounded BDD → bounded SAT — and a cascade that runs dry
records an UNKNOWN verdict with a reason code instead of raising or
hanging.  Without a budget the engine behaves exactly as before,
bit-for-bit.

Observability: the engine counts everything into one
:class:`~repro.obs.metrics.MetricsRegistry` (the canonical sink; the
``cec.*`` names are catalogued in ``docs/OBSERVABILITY.md``) and, when a
:class:`~repro.obs.trace.Tracer` is passed, emits a span tree —
``cec.check`` (pair) → ``cec.phase.*`` → ``cec.obligation`` →
``stage.sim`` / ``stage.bdd`` / ``stage.sat`` — plus instants for budget
exhaustion and lost/requeued sweep units.  :class:`EngineStats` survives
as the backward-compatible flat view, rebuilt from the registry at
finish (:meth:`EngineStats.from_metrics`), so ``CheckResult.stats`` and
``CheckResult.engine`` consumers see exactly what they always did.  The
default tracer is the no-op :data:`~repro.obs.trace.NULL_TRACER`, so the
uninstrumented path stays unchanged.
"""

from __future__ import annotations

import enum
import hashlib
import os
import random
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.aig.aig import AIG
from repro.aig.rewrite import preprocess_miter
from repro.bdd.bdd import BDD
from repro.bdd.circuit2bdd import circuit_bdds
from repro.cec.cache import EQ, NEQ, ProofCache
from repro.cec.miter import MiterAIG, build_miter
from repro.cec.parallel import (
    DEFERRED,
    UNKNOWN,
    UnitResult,
    sweep_units_parallel,
)
from repro.cec.partition import Candidate, WorkUnit, partition_candidates
from repro.netlist.circuit import Circuit
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer, coerce_tracer
from repro.runtime.budget import (
    REASON_BDD_BLOWUP,
    REASON_TIMEOUT,
    Budget,
)
from repro.runtime.errors import BddBlowupError
from repro.sat.solver import Solver

__all__ = [
    "CecVerdict",
    "CheckResult",
    "EngineStats",
    "check_equivalence",
    "check_equivalence_bdd",
    "check_miter_unsat",
]

#: Node cap for the cascade's bounded BDD attempt when the budget does not
#: set one explicitly; small enough that a blow-up costs milliseconds.
DEFAULT_BDD_NODE_LIMIT = 100_000

#: Cap on counterexample-guided refinement rounds.  Each round appends the
#: previous round's refuting SAT models as simulation columns and
#: re-splits the surviving signature classes; the loop converges as soon
#: as a round yields no new pattern, so this cap only bounds adversarial
#: worst cases.
DEFAULT_REFINE_ROUNDS = 8

#: EngineStats counter field → canonical registry metric.  One table used
#: in both directions so the flat stats view and the metrics sink can
#: never drift apart.
_COUNTER_METRICS: Dict[str, str] = {
    "sat_queries": "cec.sat_queries",
    "sweep_candidates": "cec.sweep.candidates",
    "sweep_merges": "cec.sweep.merges",
    "sweep_refuted": "cec.sweep.refuted",
    "sweep_unknown": "cec.sweep.unknown",
    "cache_hits": "cec.cache.hits",
    "cache_misses": "cec.cache.misses",
    "cache_stores": "cec.cache.stores",
    "refine_rounds": "cec.refine.rounds",
    "refine_patterns": "cec.refine.patterns",
    "refine_splits": "cec.refine.splits",
    "refine_saved": "cec.refine.queries_saved",
    "preprocess_removed": "cec.preprocess.nodes_removed",
    "cascade_sim": "cec.cascade.sim",
    "cascade_bdd": "cec.cascade.bdd",
    "cascade_sat": "cec.cascade.sat",
    "bdd_blowups": "cec.bdd_blowups",
    "budget_exhausted": "cec.budget_exhausted",
    "worker_failures": "cec.worker.failures",
    "worker_timeouts": "cec.worker.timeouts",
    "worker_retries": "cec.worker.retries",
    "units_requeued": "cec.worker.requeued",
    "pool_failures": "cec.worker.pool_failures",
}

#: Parallel-sweep telemetry key (from ``sweep_units_parallel``) → metric.
_TELEMETRY_METRICS: Dict[str, str] = {
    "worker_failures": "cec.worker.failures",
    "worker_timeouts": "cec.worker.timeouts",
    "worker_retries": "cec.worker.retries",
    "units_requeued": "cec.worker.requeued",
    "pool_failures": "cec.worker.pool_failures",
}

_PHASE_PREFIX = "cec.phase."
_PHASE_SUFFIX = ".seconds"
_WORKER_SECONDS = "cec.worker.seconds"


class CecVerdict(enum.Enum):
    EQUIVALENT = "equivalent"
    NOT_EQUIVALENT = "not_equivalent"
    UNKNOWN = "unknown"


@dataclass
class EngineStats:
    """Per-check tracing: phase wall times, query counts, cache traffic.

    Threaded through :func:`check_equivalence` into
    :class:`CheckResult.stats` (flattened via :meth:`as_dict`) so the flow
    harnesses and the CLI can report where the engine spends its time and
    how much work the proof cache and the worker pool save.

    This is now a *view*: the engine counts into a
    :class:`~repro.obs.metrics.MetricsRegistry` and rebuilds this object
    from it at finish (:meth:`from_metrics`).
    """

    n_jobs: int = 1
    n_units: int = 0
    sat_queries: int = 0
    sweep_candidates: int = 0
    sweep_merges: int = 0
    sweep_refuted: int = 0
    sweep_unknown: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    # Counterexample-guided refinement (fraiging) telemetry.
    refine_rounds: int = 0
    refine_patterns: int = 0
    refine_splits: int = 0
    refine_saved: int = 0
    # Cascade outcomes (budget-governed checks only).
    cascade_sim: int = 0
    cascade_bdd: int = 0
    cascade_sat: int = 0
    bdd_blowups: int = 0
    budget_exhausted: int = 0
    # Fault-tolerance telemetry from the parallel sweep.
    worker_failures: int = 0
    worker_timeouts: int = 0
    worker_retries: int = 0
    units_requeued: int = 0
    pool_failures: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    worker_seconds: List[float] = field(default_factory=list)
    parallel_wall: float = 0.0

    @classmethod
    def from_metrics(cls, metrics: MetricsRegistry) -> "EngineStats":
        """Rebuild the flat stats view from the canonical metric names."""
        stats = cls()
        for field_name, metric in _COUNTER_METRICS.items():
            setattr(stats, field_name, int(metrics.counter(metric)))
        stats.n_jobs = int(metrics.gauge("cec.n_jobs", 1))
        stats.n_units = int(metrics.gauge("cec.n_units", 0))
        stats.parallel_wall = metrics.gauge("cec.parallel.wall_seconds", 0.0)
        for name in metrics.names():
            if name.startswith(_PHASE_PREFIX) and name.endswith(_PHASE_SUFFIX):
                phase = name[len(_PHASE_PREFIX) : -len(_PHASE_SUFFIX)]
                stats.phase_seconds[phase] = metrics.gauge(name)
        stats.worker_seconds = metrics.series(_WORKER_SECONDS)
        return stats

    def worker_utilisation(self) -> float:
        """Busy fraction of the worker pool during the parallel sweep."""
        if not self.worker_seconds or self.parallel_wall <= 0 or self.n_jobs < 1:
            return 0.0
        busy = sum(self.worker_seconds)
        return min(1.0, busy / (self.parallel_wall * self.n_jobs))

    def as_dict(self) -> Dict[str, float]:
        """Flatten to the numeric key/value form ``CheckResult.stats`` uses.

        Every canonical counter appears, zero or not — consumers can rely
        on the key set being identical across runs; anything that wants a
        compact view suppresses zeros at *render* time (see
        ``repro.flows.report.compact_stats``).
        """
        out: Dict[str, float] = {"n_jobs": self.n_jobs, "n_units": self.n_units}
        for key in _COUNTER_METRICS:
            out[key] = getattr(self, key)
        if self.worker_seconds:
            out["worker_utilisation"] = self.worker_utilisation()
        for phase, seconds in self.phase_seconds.items():
            out[f"time_{phase}"] = seconds
        return out


@dataclass
class CheckResult:
    """Outcome of an equivalence check.

    ``reason`` carries the machine-readable cause of an UNKNOWN verdict
    (a ``REASON_*`` code from :mod:`repro.runtime.budget`); it is None for
    decided verdicts.

    Implements the common verification-result protocol
    (:class:`repro.api.VerificationResult`): ``verdict`` / ``reason`` /
    ``stats`` / ``counterexample`` / ``failing_output`` / ``equivalent`` /
    :meth:`as_dict`, shared with
    :class:`repro.core.verify.SeqCheckResult`.
    """

    verdict: CecVerdict
    counterexample: Optional[Dict[str, bool]] = None
    failing_output: Optional[str] = None
    stats: Dict[str, float] = field(default_factory=dict)
    engine: Optional[EngineStats] = None
    reason: Optional[str] = None

    #: Combinational checks have one proving method; present so the
    #: canonical ``as_dict()`` key set matches ``SeqCheckResult``'s.
    method: str = "cec"

    @property
    def equivalent(self) -> bool:
        """True when the verdict is EQUIVALENT."""
        return self.verdict is CecVerdict.EQUIVALENT

    def __bool__(self) -> bool:
        return self.equivalent

    def as_dict(self) -> Dict[str, object]:
        """Canonical JSON-able form: the one key set every result type uses.

        The keys are exactly ``repro.api.RESULT_KEYS`` — ``verdict`` (the
        enum's string value), ``method``, ``reason``, ``counterexample``
        (here a single input assignment), ``failing_output`` and
        ``stats``.  :attr:`engine` is a live-object view and deliberately
        not part of the serialised form; its content is already flattened
        into :attr:`stats`.
        """
        return {
            "verdict": self.verdict.value,
            "method": self.method,
            "reason": self.reason,
            "counterexample": (
                dict(self.counterexample)
                if self.counterexample is not None
                else None
            ),
            "failing_output": self.failing_output,
            "stats": dict(self.stats),
        }


def _round_seed(seed: int, r: int) -> int:
    """Mix ``(seed, r)`` into an independent per-round pattern seed.

    Plain ``seed + r`` makes round ``r`` of seed ``s`` identical to round
    0 of seed ``s + r``, so neighbouring seeds share most of their
    pattern stream.  Hash mixing keeps runs deterministic (hashlib, so no
    ``PYTHONHASHSEED`` dependence) while making the streams of different
    ``(seed, round)`` pairs independent.
    """
    digest = hashlib.blake2b(
        f"{seed}/{r}".encode("ascii"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def _initial_signatures(
    aig: AIG, rounds: int, width: int, seed: int
) -> Tuple[List[int], int]:
    """Multi-round simulation signatures for every node.

    Returns ``(signatures, mask)`` where ``signatures[n]`` concatenates
    node ``n``'s simulation words over all rounds.  Every node gets a
    signature — including constant node 0 (always 0) and the PIs — so
    stuck-at-constant nodes join the constant's class and are proven
    against the constant directly instead of pairwise.

    All rounds are packed into one wide corpus (round ``r`` occupies bit
    columns ``[(rounds-1-r)*width, (rounds-r)*width)``, so round 0 stays
    most significant) and evaluated in a single
    :meth:`~repro.aig.aig.AIG.simulate_words` call — one pass over the
    AIG, vectorised when the numpy kernel is available.  Bit-identical
    to the historical per-round shift-and-concatenate loop.
    """
    pi_words = {name: 0 for name in aig.pi_names}
    for r in range(rounds):
        rng = random.Random(_round_seed(seed, r))
        shift = (rounds - 1 - r) * width
        for name in aig.pi_names:
            pi_words[name] |= rng.getrandbits(width) << shift
    total_width = rounds * width
    return aig.simulate_words(pi_words, total_width), (1 << total_width) - 1


def _signature_classes(
    signatures: Sequence[int], mask: int, nodes: Sequence[int]
) -> Dict[int, List[int]]:
    """Partition ``nodes`` by normalised signature.

    A signature whose first bit is 1 is complemented so a node and its
    complement land in the same class.  Only classes with at least two
    members survive; members are listed in node order.
    """
    classes: Dict[int, List[int]] = {}
    for node in sorted(nodes):
        sig = signatures[node]
        if sig & 1:
            sig ^= mask
        classes.setdefault(sig, []).append(node)
    return {
        sig: members for sig, members in classes.items() if len(members) > 1
    }


def _class_candidates(
    aig: AIG,
    classes: Dict[int, List[int]],
    signatures: Sequence[int],
    resolved: Optional[Set[Tuple[int, int, bool]]] = None,
    group_offset: int = 0,
) -> List[List[Candidate]]:
    """Candidate pairs per signature class.

    The representative is the class's smallest node — constant node 0
    when present, so constant-equivalent nodes merge with the constant.
    Relative phase comes from the full multi-round signature (raw
    signatures equal means same phase; the class already folded the
    complement in).  Pairs of two non-AND nodes are skipped: two distinct
    PIs, or a PI and the constant, are never equal, so their query is
    guaranteed SAT and proves nothing.  ``resolved`` drops pairs an
    earlier refinement round already decided; ``group_offset`` keeps
    class (group) ids unique across rounds.
    """
    class_list: List[List[Candidate]] = []
    group = group_offset
    for members in classes.values():
        rep = members[0]
        rep_is_and = rep != 0 and not aig.is_pi_node(rep)
        cls: List[Candidate] = []
        for node in members[1:]:
            if not rep_is_and and aig.is_pi_node(node):
                continue
            phase = signatures[node] == signatures[rep]
            if resolved is not None and (rep, node, phase) in resolved:
                continue
            cls.append(Candidate(rep, node, phase_equal=phase, group=group))
        if cls:
            class_list.append(cls)
        group += 1
    return class_list


def _pair_key(cand: Candidate) -> Tuple[int, int, bool]:
    """Identity of a candidate query across refinement rounds."""
    return (cand.rep, cand.node, cand.phase_equal)


def _sweep_unit_serial(
    solver: Solver,
    lit2cnf,
    unit: WorkUnit,
    conflict_limit: Optional[int],
    deadline: Optional[float] = None,
    defer: bool = False,
    collect_models: bool = False,
    pi_nodes: Optional[Sequence[int]] = None,
) -> UnitResult:
    """Sweep one unit on the parent's incremental solver (the serial path).

    ``defer`` / ``collect_models`` mirror the worker path: after one NEQ
    in a signature class the class's remaining queries are deferred to
    the refinement loop, and refuting models are shipped back as
    ``{pi node: value}`` assignments (``pi_nodes`` lists the AIG's PI
    node ids; their CNF variable is ``node + 1``).
    """
    t0 = time.perf_counter()
    statuses: List[str] = []
    models: List[Optional[Dict[int, bool]]] = []
    refuted_groups: Set[int] = set()
    pi_vars = (
        [(node + 1, node) for node in pi_nodes]
        if collect_models and pi_nodes is not None
        else []
    )
    sat_queries = 0

    def record_neq(model: Optional[Dict[int, bool]]) -> None:
        statuses.append(NEQ)
        if collect_models and model is not None:
            models.append(
                {node: bool(model.get(var, False)) for var, node in pi_vars}
            )
        else:
            models.append(None)

    for cand in unit.candidates:
        if defer and cand.group in refuted_groups:
            statuses.append(DEFERRED)
            models.append(None)
            continue
        a = lit2cnf(cand.rep_lit)
        b = lit2cnf(cand.node_lit)
        # UNSAT(a != b) in both directions means equal.
        r1 = solver.solve(
            assumptions=[a, -b],
            conflict_limit=conflict_limit,
            deadline=deadline,
        )
        sat_queries += 1
        if r1.satisfiable:
            record_neq(r1.model)
            refuted_groups.add(cand.group)
            continue
        if solver.last_unknown:
            statuses.append(UNKNOWN)
            models.append(None)
            continue
        r2 = solver.solve(
            assumptions=[-a, b],
            conflict_limit=conflict_limit,
            deadline=deadline,
        )
        sat_queries += 1
        if r2.satisfiable:
            record_neq(r2.model)
            refuted_groups.add(cand.group)
            continue
        if solver.last_unknown:
            statuses.append(UNKNOWN)
            models.append(None)
            continue
        # Proven equal: add merge clauses to help later queries.
        solver.add_clause([-a, b])
        solver.add_clause([a, -b])
        statuses.append(EQ)
        models.append(None)
    return UnitResult(
        statuses,
        sat_queries,
        time.perf_counter() - t0,
        models=models if collect_models else None,
    )


def _model_to_pattern(aig: AIG, model: Dict[int, bool]) -> Dict[str, bool]:
    """Translate a ``{pi node: value}`` model into a named PI assignment.

    PIs outside the refuting query's cone are unconstrained; they default
    to False so the pattern is total and deterministic.
    """
    return {
        name: bool(model.get(node, False))
        for node, name in zip(aig.pis, aig.pi_names)
    }


def _refine_signatures(
    aig: AIG,
    signatures: Sequence[int],
    mask: int,
    collected: Sequence[Tuple[Candidate, Dict[str, bool]]],
) -> Tuple[List[int], int, int]:
    """Append one sweep round's refuting models as new signature columns.

    ``collected`` pairs each NEQ candidate with the PI assignment its SAT
    model produced.  Every model is validated by re-simulation before any
    column lands in the signatures — its column must actually drive the
    pair's literals apart, mirroring :func:`_validate_counterexample` —
    because refining on a fictitious pattern would silently degrade class
    quality while a bogus model means the engine state is corrupt.
    Duplicate assignments are folded into one column.  Returns the new
    ``(signatures, mask, patterns_added)``.
    """
    unique: List[Dict[str, bool]] = []
    column_of: Dict[Tuple[bool, ...], int] = {}
    columns: List[int] = []
    for _, pattern in collected:
        key = tuple(bool(pattern.get(name, False)) for name in aig.pi_names)
        index = column_of.get(key)
        if index is None:
            index = len(unique)
            column_of[key] = index
            unique.append(pattern)
        columns.append(index)
    words, new_mask = aig.simulate_patterns(unique)

    def lit_bit(lit: int, column: int) -> int:
        return ((words[lit >> 1] >> column) & 1) ^ (lit & 1)

    for (cand, _), column in zip(collected, columns):
        if lit_bit(cand.rep_lit, column) == lit_bit(cand.node_lit, column):
            raise RuntimeError(
                f"sweep NEQ model for pair ({cand.rep}, {cand.node}) does "
                "not distinguish it under re-simulation; CEC engine state "
                "is inconsistent"
            )
    width = len(unique)
    refined = [
        (sig << width) | (words[node] & new_mask)
        for node, sig in enumerate(signatures)
    ]
    return refined, (mask << width) | new_mask, width


def _extract_counterexample(
    aig: AIG, model: Dict[int, bool], lit2cnf
) -> Dict[str, bool]:
    return {
        pi: bool(model.get(lit2cnf(2 * node), False))
        for node, pi in zip(aig.pis, aig.pi_names)
    }


def _validate_counterexample(
    aig: AIG, cex: Dict[str, bool], l1: int, l2: int, name: str
) -> None:
    """Re-simulate an extracted assignment; raise unless it distinguishes.

    A SAT model is only a counterexample if replaying it through the AIG
    actually drives the paired output literals apart — anything else means
    the encoding, the model extraction, or a cached merge is corrupt, and
    returning it would be reporting NOT_EQUIVALENT on fiction.
    """
    v1, v2 = aig.eval_literals([l1, l2], cex)
    if v1 == v2:
        raise RuntimeError(
            f"extracted counterexample does not distinguish output {name!r}; "
            "CEC engine state is inconsistent"
        )


def _lit_word(words: List[int], mask: int, lit: int) -> int:
    """Simulation word of an AIG literal (complement under the mask)."""
    word = words[lit >> 1]
    return (~word & mask) if lit & 1 else word


def _sim_refute_pair(
    aig: AIG,
    l1: int,
    l2: int,
    name: str,
    words: List[int],
    mask: int,
) -> Optional[Dict[str, bool]]:
    """Cascade stage 2: refute an output pair from simulation alone.

    If the pair's simulation words differ, the differing bit column *is* a
    counterexample — extract the PI assignment of that column, re-validate
    it, and no SAT/BDD work is needed at all.  Returns None when the
    simulation cannot distinguish the pair.
    """
    diff = (_lit_word(words, mask, l1) ^ _lit_word(words, mask, l2)) & mask
    if not diff:
        return None
    bit = (diff & -diff).bit_length() - 1
    cex = {
        pi_name: bool((words[pi_node] >> bit) & 1)
        for pi_node, pi_name in zip(aig.pis, aig.pi_names)
    }
    _validate_counterexample(aig, cex, l1, l2, name)
    return cex


def _bdd_decide_pair(
    aig: AIG,
    l1: int,
    l2: int,
    name: str,
    node_limit: int,
    budget: Optional[Budget],
    metrics: Optional[MetricsRegistry] = None,
) -> Optional[Tuple[str, Optional[Dict[str, bool]]]]:
    """Cascade stage 3: decide an output pair with a node-bounded BDD.

    Builds BDDs for the pair's fanin cone only, with PI node order as the
    variable order.  Returns ``(EQ, None)`` / ``(NEQ, cex)``, or None when
    the attempt blows past ``node_limit`` (or the budget deadline) and the
    cascade should fall through to SAT.
    """
    manager = BDD(node_limit=node_limit)
    if metrics is not None:
        manager.attach_metrics(metrics)
    pi_name_of = dict(zip(aig.pis, aig.pi_names))
    node_bdd: Dict[int, int] = {0: manager.ZERO}

    def lit_bdd(lit: int) -> int:
        bdd_node = node_bdd[lit >> 1]
        return manager.apply_not(bdd_node) if lit & 1 else bdd_node

    try:
        cone = sorted(aig.cone_nodes([l1, l2]))
        for count, node in enumerate(cone):
            if budget is not None and (count & 255) == 0 and budget.expired():
                return None
            if node == 0:
                continue
            if aig.is_pi_node(node):
                node_bdd[node] = manager.add_var(pi_name_of[node])
            else:
                f0, f1 = aig.fanins(node)
                node_bdd[node] = manager.apply_and(lit_bdd(f0), lit_bdd(f1))
        b1, b2 = lit_bdd(l1), lit_bdd(l2)
        if b1 == b2:
            return EQ, None
        assignment = manager.pick_minterm(manager.apply_xor(b1, b2)) or {}
    except BddBlowupError:
        return None
    finally:
        manager.flush_metrics()
    cex = {
        pi: bool(assignment.get(pi, False)) for pi in aig.pi_names
    }
    _validate_counterexample(aig, cex, l1, l2, name)
    return NEQ, cex


def _check_outputs_cascade(
    miter: MiterAIG,
    aig: AIG,
    solver: Solver,
    lit2cnf,
    proof_cache: Optional[ProofCache],
    conflict_limit: Optional[int],
    budget: Budget,
    metrics: MetricsRegistry,
    tracer: Union[Tracer, NullTracer],
    sim_width: int,
    seed: int,
) -> CheckResult:
    """Budget-governed output checks: the explicit fallback cascade.

    Each output pair walks structural hash (``l1 == l2`` / cache) →
    simulation refutation → bounded BDD → bounded SAT.  Whatever stage
    decides the pair records its verdict; a budget that runs dry at any
    stage returns UNKNOWN with the exhausted resource as the reason code.
    Nothing in here raises on resource exhaustion.
    """
    words, mask = aig.random_simulate(width=sim_width, seed=seed)
    sat_limit = conflict_limit
    if budget.sat_conflicts is not None:
        sat_limit = (
            budget.sat_conflicts
            if sat_limit is None
            else min(sat_limit, budget.sat_conflicts)
        )
    node_limit = budget.bdd_nodes or DEFAULT_BDD_NODE_LIMIT

    def record(key: Optional[str], verdict: str) -> None:
        if proof_cache is not None and key is not None:
            proof_cache.put(key, verdict)
            metrics.inc("cec.cache.stores")

    for name, l1, l2 in miter.output_pairs:
        # Stage 1: structural — the miter already hashed both cones.
        if l1 == l2:
            continue
        with tracer.span("cec.obligation", cat="obligation", output=name) as ob:
            if tracer.enabled:
                # Obligation features (cone size, sim width) feed the
                # per-obligation log — dispatch-policy training data —
                # so the cone walk only happens when tracing.
                ob.annotate(
                    cone=len(aig.cone_nodes((l1, l2))), width=sim_width
                )
            key: Optional[str] = None
            if proof_cache is not None:
                key = aig.pair_cone_key(l1, l2)
                if proof_cache.get(key) == EQ:
                    metrics.inc("cec.cache.hits")
                    ob.annotate(decided_by="cache", verdict="eq")
                    continue
                # A cached NEQ still needs a fresh model for the
                # counterexample, so only EQ skips the remaining stages.
                metrics.inc("cec.cache.misses")
            if budget.expired():
                metrics.inc("cec.budget_exhausted")
                tracer.instant(
                    "budget.exhausted", output=name, reason=REASON_TIMEOUT
                )
                ob.annotate(verdict="unknown", reason=REASON_TIMEOUT)
                return CheckResult(CecVerdict.UNKNOWN, reason=REASON_TIMEOUT)
            # Stage 2: simulation refutation — a differing signature column
            # is already a counterexample; no proving engine needed.
            with tracer.span("stage.sim", cat="stage", output=name):
                cex = _sim_refute_pair(aig, l1, l2, name, words, mask)
            if cex is not None:
                metrics.inc("cec.cascade.sim")
                ob.annotate(decided_by="sim", verdict="neq")
                record(key, NEQ)
                return CheckResult(
                    CecVerdict.NOT_EQUIVALENT,
                    counterexample=cex,
                    failing_output=name,
                )
            # Stage 3: bounded BDD on the pair's cone.
            with tracer.span("stage.bdd", cat="stage", output=name):
                decided = _bdd_decide_pair(
                    aig, l1, l2, name, node_limit, budget, metrics
                )
            if decided is not None:
                metrics.inc("cec.cascade.bdd")
                status, cex = decided
                ob.annotate(decided_by="bdd", verdict=status)
                record(key, status)
                if status == NEQ:
                    return CheckResult(
                        CecVerdict.NOT_EQUIVALENT,
                        counterexample=cex,
                        failing_output=name,
                    )
                continue
            if not budget.expired():
                # fell through on nodes, not time
                metrics.inc("cec.bdd_blowups")
                tracer.instant(
                    "bdd.blowup", output=name, node_limit=node_limit
                )
            # Stage 4: bounded SAT.  An expired deadline makes the solver
            # return UNKNOWN("timeout") immediately, which is the right end.
            a = lit2cnf(l1)
            b = lit2cnf(l2)
            with tracer.span("stage.sat", cat="stage", output=name):
                for assumptions in ([a, -b], [-a, b]):
                    res = solver.solve(
                        assumptions=assumptions,
                        conflict_limit=sat_limit,
                        propagation_limit=budget.sat_propagations,
                        deadline=budget.deadline,
                    )
                    metrics.inc("cec.sat_queries")
                    if solver.last_unknown:
                        reason = solver.last_unknown_reason or REASON_TIMEOUT
                        metrics.inc("cec.budget_exhausted")
                        tracer.instant(
                            "budget.exhausted", output=name, reason=reason
                        )
                        ob.annotate(verdict="unknown", reason=reason)
                        return CheckResult(CecVerdict.UNKNOWN, reason=reason)
                    if res.satisfiable:
                        assert res.model is not None
                        cex = _extract_counterexample(aig, res.model, lit2cnf)
                        _validate_counterexample(aig, cex, l1, l2, name)
                        metrics.inc("cec.cascade.sat")
                        ob.annotate(decided_by="sat", verdict="neq")
                        record(key, NEQ)
                        return CheckResult(
                            CecVerdict.NOT_EQUIVALENT,
                            counterexample=cex,
                            failing_output=name,
                        )
            metrics.inc("cec.cascade.sat")
            ob.annotate(decided_by="sat", verdict="eq")
            record(key, EQ)
    return CheckResult(CecVerdict.EQUIVALENT)


def _check_outputs_classic(
    miter: MiterAIG,
    aig: AIG,
    solver: Solver,
    lit2cnf,
    proof_cache: Optional[ProofCache],
    conflict_limit: Optional[int],
    metrics: MetricsRegistry,
    tracer: Union[Tracer, NullTracer],
) -> CheckResult:
    """Unbudgeted output checks: cache pass then plain SAT per pair."""
    for name, l1, l2 in miter.output_pairs:
        if l1 == l2:
            continue
        with tracer.span("cec.obligation", cat="obligation", output=name) as ob:
            if tracer.enabled:
                ob.annotate(cone=len(aig.cone_nodes((l1, l2))))
            key: Optional[str] = None
            if proof_cache is not None:
                key = aig.pair_cone_key(l1, l2)
                if proof_cache.get(key) == EQ:
                    metrics.inc("cec.cache.hits")
                    ob.annotate(decided_by="cache", verdict="eq")
                    continue
                # A cached NEQ still needs a fresh model for the
                # counterexample, so only EQ skips the SAT work.
                metrics.inc("cec.cache.misses")
            a = lit2cnf(l1)
            b = lit2cnf(l2)
            with tracer.span("stage.sat", cat="stage", output=name):
                for assumptions in ([a, -b], [-a, b]):
                    res = solver.solve(
                        assumptions=assumptions, conflict_limit=conflict_limit
                    )
                    metrics.inc("cec.sat_queries")
                    if solver.last_unknown:
                        ob.annotate(verdict="unknown")
                        return CheckResult(CecVerdict.UNKNOWN)
                    if res.satisfiable:
                        assert res.model is not None
                        cex = _extract_counterexample(aig, res.model, lit2cnf)
                        _validate_counterexample(aig, cex, l1, l2, name)
                        ob.annotate(decided_by="sat", verdict="neq")
                        if proof_cache is not None and key is not None:
                            proof_cache.put(key, NEQ)
                            metrics.inc("cec.cache.stores")
                        return CheckResult(
                            CecVerdict.NOT_EQUIVALENT,
                            counterexample=cex,
                            failing_output=name,
                        )
            ob.annotate(decided_by="sat", verdict="eq")
            if proof_cache is not None and key is not None:
                proof_cache.put(key, EQ)
                metrics.inc("cec.cache.stores")
    return CheckResult(CecVerdict.EQUIVALENT)


def check_equivalence(
    c1: Circuit,
    c2: Circuit,
    sim_rounds: int = 4,
    sim_width: int = 64,
    sweep: bool = True,
    conflict_limit: Optional[int] = None,
    seed: int = 0,
    refine: bool = True,
    refine_rounds: int = DEFAULT_REFINE_ROUNDS,
    preprocess: bool = True,
    n_jobs: int = 1,
    cache: Union[None, str, os.PathLike, ProofCache] = None,
    budget: Union[None, int, float, Budget] = None,
    tracer: Union[None, Tracer, NullTracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> CheckResult:
    """Check combinational equivalence of two circuits.

    The main entry point of the CEC substrate.  ``sweep=False`` skips the
    internal-equivalence SAT sweeping (pure monolithic SAT on the miter).
    ``n_jobs > 1`` partitions the sweep into cone-disjoint work units and
    proves them on a process pool (verdict-identical to ``n_jobs=1``).
    ``cache`` — a :class:`~repro.cec.cache.ProofCache` or a path to one —
    replays previously-proven candidate and output verdicts by structural
    cone hash, skipping their SAT queries entirely.

    ``refine`` (default on) closes the simulation↔solver loop FRAIG
    style: every refuting SAT model from the sweep is appended as a new
    simulation-pattern column, the surviving signature classes are
    re-split, and the sweep repeats until no new pattern appears (or
    ``refine_rounds`` is reached).  While refinement is active, one NEQ
    inside a signature class defers the class's remaining queries — the
    new pattern usually splits the class, so most deferred queries are
    never spent.  ``refine=False`` restores the single-pass sweep.

    ``preprocess`` (default on) rewrites the miter before any sweep —
    constant propagation, structural hashing, local two-level rewrites
    and dead-node elimination (:func:`repro.aig.rewrite.preprocess_miter`)
    — so every downstream phase works on a smaller AIG.  The rewrites
    are semantics-preserving, so verdicts with preprocessing on and off
    are identical; the AND-node reduction is recorded as
    ``cec.preprocess.nodes_removed``.  ``preprocess=False`` sweeps the
    raw miter.

    ``budget`` — a :class:`~repro.runtime.Budget` or bare wall-clock
    seconds — switches the output checks onto the fallback cascade
    (structural → simulation refutation → bounded BDD → bounded SAT) and
    bounds every SAT/BDD call; exhaustion yields an UNKNOWN verdict with
    ``CheckResult.reason`` set, never an exception or a hang.  With no
    budget, verdicts and stats are bit-for-bit what they always were.

    ``tracer`` — a :class:`~repro.obs.trace.Tracer` — records the span
    tree of the check (None means the no-op tracer: zero overhead beyond
    what the engine already measures).  ``metrics`` — a caller-owned
    :class:`~repro.obs.metrics.MetricsRegistry` — receives a merge of the
    check's full metric set at finish (the engine always counts into its
    own per-check registry first, so passing a shared registry across
    checks cannot corrupt any single check's stats).
    """
    tracer = coerce_tracer(tracer)
    caller_metrics = metrics
    registry = MetricsRegistry()
    n_jobs = max(1, int(n_jobs))
    registry.set_gauge("cec.n_jobs", n_jobs)
    proof_cache = ProofCache.coerce(cache)
    if proof_cache is not None:
        proof_cache.attach_metrics(registry)
    budget = Budget.coerce(budget)
    if budget is not None and budget.unlimited:
        budget = None  # an empty budget constrains nothing: classic path
    if budget is not None:
        budget.start()
    deadline = budget.deadline if budget is not None else None
    root = tracer.span(
        "cec.check",
        cat="pair",
        c1=getattr(c1, "name", ""),
        c2=getattr(c2, "name", ""),
        n_jobs=n_jobs,
        budgeted=budget is not None,
    )
    t0 = time.perf_counter()
    with tracer.span("cec.phase.build", cat="phase"):
        miter = build_miter(c1, c2)
    registry.set_gauge("cec.phase.build.seconds", time.perf_counter() - t0)
    stats: Dict[str, float] = {
        "aig_nodes": miter.aig.num_nodes(),
        "aig_ands": miter.aig.num_ands(),
    }

    def finish(result: CheckResult) -> CheckResult:
        if proof_cache is not None:
            try:
                proof_cache.save()
            except Exception as exc:  # noqa: BLE001 - the verdict is
                # already decided; losing cache persistence (full disk,
                # injected save fault) must not lose the answer.
                registry.inc("cec.cache.save_failures")
                warnings.warn(
                    f"proof cache save failed: {exc}; verdict unaffected",
                    RuntimeWarning,
                    stacklevel=2,
                )
        stats["time"] = time.perf_counter() - t0
        engine = EngineStats.from_metrics(registry)
        stats.update(engine.as_dict())
        result.stats = stats
        result.engine = engine
        if tracer.enabled:
            tracer.metrics(registry.as_flat_dict(), name="cec.metrics")
        root.annotate(verdict=result.verdict.value)
        if result.reason:
            root.annotate(reason=result.reason)
        root.close()
        if caller_metrics is not None:
            caller_metrics.merge(registry)
        return result

    if miter.trivially_equivalent:
        stats["structural"] = 1
        root.annotate(structural=True)
        return finish(CheckResult(CecVerdict.EQUIVALENT))

    if preprocess and (budget is None or not budget.expired()):
        t_pre = time.perf_counter()
        with tracer.span("cec.phase.preprocess", cat="phase"):
            miter, removed = preprocess_miter(miter)
        registry.set_gauge(
            "cec.phase.preprocess.seconds", time.perf_counter() - t_pre
        )
        registry.inc("cec.preprocess.nodes_removed", removed)
        stats["aig_ands_preprocessed"] = miter.aig.num_ands()
        if miter.trivially_equivalent:
            # The rewrites hashed every output pair onto one literal:
            # equivalence is now structural, no solver needed.
            stats["structural"] = 1
            root.annotate(structural=True, preprocessed=True)
            return finish(CheckResult(CecVerdict.EQUIVALENT))

    aig = miter.aig
    t_enc = time.perf_counter()
    with tracer.span("cec.phase.encode", cat="phase"):
        cnf, lit2cnf = aig.to_cnf()
        solver = Solver()
        solver.metrics = registry
        if not solver.add_cnf(cnf):
            # The AIG CNF alone can only be UNSAT if something is deeply wrong.
            raise RuntimeError("inconsistent AIG encoding")
    registry.set_gauge("cec.phase.encode.seconds", time.perf_counter() - t_enc)

    def merge(a: int, b: int) -> None:
        solver.add_clause([-a, b])
        solver.add_clause([a, -b])

    def bump_gauge(name: str, delta: float) -> None:
        registry.set_gauge(name, registry.gauge(name, 0.0) + delta)

    if sweep and (budget is None or not budget.expired()):
        t_sim = time.perf_counter()
        with tracer.span("cec.phase.simulate", cat="phase"):
            signatures, sig_mask = _initial_signatures(
                aig, sim_rounds, sim_width, seed
            )
        sim_seconds = time.perf_counter() - t_sim
        registry.set_gauge("cec.phase.simulate.seconds", sim_seconds)
        # Throughput in 64-bit node-words: nodes × lanes / wall seconds.
        sim_lanes = max(1, (sim_rounds * sim_width + 63) // 64)
        if sim_seconds > 0:
            registry.set_gauge(
                "cec.sim.words_per_sec",
                aig.num_nodes() * sim_lanes / sim_seconds,
            )

        sweep_limit = conflict_limit or 2000
        if budget is not None and budget.sat_conflicts is not None:
            sweep_limit = min(sweep_limit, budget.sat_conflicts)

        # The refinement loop.  ``active`` holds nodes still eligible for
        # classes (EQ-proven nodes retire onto their representative);
        # ``resolved`` holds (rep, node, phase) queries already decided
        # so they are never re-derived; ``deferred_open`` tracks deferred
        # queries that have not reappeared — at exit, those are the SAT
        # queries refinement genuinely saved.
        active = set(range(aig.num_nodes()))
        resolved: Set[Tuple[int, int, bool]] = set()
        deferred_open: Set[Tuple[int, int, bool]] = set()
        group_offset = 0
        round_no = 0
        force_final = False
        while budget is None or not budget.expired():
            refining = refine and round_no < refine_rounds and not force_final
            classes = _signature_classes(signatures, sig_mask, active)
            class_list = _class_candidates(
                aig, classes, signatures, resolved, group_offset
            )
            group_offset += len(classes)
            if not class_list:
                break
            registry.inc(
                "cec.sweep.candidates", sum(len(cls) for cls in class_list)
            )
            if deferred_open:
                # A deferred query that comes back as a candidate was not
                # saved after all; it is about to be solved (or deferred
                # again).
                for cls in class_list:
                    for cand in cls:
                        deferred_open.discard(_pair_key(cand))

            # Cache pass: replay known verdicts, keep the rest for solving.
            if proof_cache is not None:
                t_cache = time.perf_counter()
                with tracer.span("cec.phase.cache", cat="phase"):
                    pending: List[List[Candidate]] = []
                    for cls in class_list:
                        keep: List[Candidate] = []
                        for cand in cls:
                            key = aig.pair_cone_key(
                                cand.rep_lit, cand.node_lit
                            )
                            known = proof_cache.get(key)
                            if known == EQ:
                                registry.inc("cec.cache.hits")
                                registry.inc("cec.sweep.merges")
                                merge(
                                    lit2cnf(cand.rep_lit),
                                    lit2cnf(cand.node_lit),
                                )
                                active.discard(cand.node)
                            elif known == NEQ:
                                registry.inc("cec.cache.hits")
                                registry.inc("cec.sweep.refuted")
                                resolved.add(_pair_key(cand))
                            else:
                                registry.inc("cec.cache.misses")
                                keep.append(cand)
                        if keep:
                            pending.append(keep)
                    class_list = pending
                bump_gauge(
                    "cec.phase.cache.seconds", time.perf_counter() - t_cache
                )

            t_part = time.perf_counter()
            with tracer.span("cec.phase.partition", cat="phase"):
                units = partition_candidates(aig, class_list, n_jobs)
            registry.max_gauge("cec.n_units", len(units))
            bump_gauge(
                "cec.phase.partition.seconds", time.perf_counter() - t_part
            )

            t_sweep = time.perf_counter()
            sweep_span = tracer.span(
                "cec.phase.sweep",
                cat="phase",
                n_units=len(units),
                round=round_no,
            )
            parallel = n_jobs > 1 and len(units) > 1
            collect = tracer.enabled or caller_metrics is not None
            if parallel:
                wall_remaining = (
                    budget.remaining() if budget is not None else None
                )
                # The pool window is a backstop above the in-worker
                # deadline: it only fires when a worker is hung or dead,
                # so give it a little slack before killing the pool.
                unit_timeout = (
                    wall_remaining * 1.25 + 0.25
                    if wall_remaining is not None
                    else None
                )
                telemetry: Dict[str, int] = {}
                results = sweep_units_parallel(
                    solver,
                    units,
                    sweep_limit,
                    n_jobs,
                    wall_remaining=wall_remaining,
                    unit_timeout=unit_timeout,
                    telemetry=telemetry,
                    collect=collect,
                    trace_epoch=tracer.epoch,
                    defer=refining,
                    collect_models=refining,
                    pi_nodes=aig.pis,
                )
                for tele_key, value in telemetry.items():
                    registry.inc(_TELEMETRY_METRICS[tele_key], value)
                bump_gauge(
                    "cec.parallel.wall_seconds", time.perf_counter() - t_sweep
                )
            else:
                results = [
                    _sweep_unit_serial(
                        solver,
                        lit2cnf,
                        unit,
                        sweep_limit,
                        deadline=deadline,
                        defer=refining,
                        collect_models=refining,
                        pi_nodes=aig.pis,
                    )
                    for unit in units
                ]
            collected: List[Tuple[Candidate, Dict[str, bool]]] = []
            deferred_this_round = False
            # Signature-class width per group id (members + representative)
            # — an obligation feature for the per-candidate log below.
            group_width: Dict[int, int] = {}
            if tracer.enabled:
                for cls in class_list:
                    if cls:
                        group_width[cls[0].group] = len(cls) + 1
            for index, (unit, result) in enumerate(zip(units, results)):
                if result.events:
                    tracer.adopt(result.events, parent=sweep_span, worker=index)
                if result.metrics:
                    registry.merge(result.metrics)
                if result.error:
                    tracer.instant(
                        "sweep.unit.lost",
                        unit=index,
                        error=result.error,
                        retries=result.retries,
                    )
                elif result.retries:
                    tracer.instant(
                        "sweep.unit.requeued",
                        unit=index,
                        retries=result.retries,
                    )
                registry.append(_WORKER_SECONDS, result.seconds)
                registry.inc("cec.sat_queries", result.sat_queries)
                for ci, (cand, status) in enumerate(
                    zip(unit.candidates, result.statuses)
                ):
                    if status == EQ:
                        registry.inc("cec.sweep.merges")
                        if parallel:
                            # Worker proofs happen off-solver; merge here.
                            merge(
                                lit2cnf(cand.rep_lit), lit2cnf(cand.node_lit)
                            )
                        active.discard(cand.node)
                    elif status == NEQ:
                        registry.inc("cec.sweep.refuted")
                        resolved.add(_pair_key(cand))
                        model = result.model_for(ci)
                        if refining and model is not None:
                            collected.append(
                                (cand, _model_to_pattern(aig, model))
                            )
                    elif status == DEFERRED:
                        deferred_this_round = True
                        deferred_open.add(_pair_key(cand))
                    else:
                        registry.inc("cec.sweep.unknown")
                        resolved.add(_pair_key(cand))
                    if proof_cache is not None and status in (EQ, NEQ):
                        key = aig.pair_cone_key(cand.rep_lit, cand.node_lit)
                        proof_cache.put(key, status)
                        registry.inc("cec.cache.stores")
                    if tracer.enabled:
                        # One feature record per sweep candidate; unit
                        # seconds are apportioned evenly — workers time
                        # the unit, not individual queries.  The serial
                        # path never computes unit cones, so derive the
                        # candidate's own cone instead.
                        tracer.instant(
                            "cec.obligation.features",
                            cat="obligation",
                            kind="sweep",
                            round=round_no,
                            unit=index,
                            group=cand.group,
                            width=group_width.get(cand.group, 2),
                            cone=len(
                                aig.cone_nodes(
                                    (cand.rep_lit, cand.node_lit)
                                )
                            ),
                            engine="sat",
                            verdict=status,
                            seconds=result.seconds
                            / max(1, len(unit.candidates)),
                        )
            sweep_span.annotate(
                merges=int(registry.counter("cec.sweep.merges")),
                refuted=int(registry.counter("cec.sweep.refuted")),
                unknown=int(registry.counter("cec.sweep.unknown")),
            )
            sweep_span.close()
            bump_gauge(
                "cec.phase.sweep.seconds", time.perf_counter() - t_sweep
            )

            if collected and refining:
                t_refine = time.perf_counter()
                with tracer.span(
                    "cec.phase.refine",
                    cat="phase",
                    round=round_no,
                    models=len(collected),
                ) as refine_span:
                    signatures, sig_mask, n_patterns = _refine_signatures(
                        aig, signatures, sig_mask, collected
                    )
                    splits = 0
                    for members in classes.values():
                        alive = [n for n in members if n in active]
                        if len(alive) < 2:
                            continue
                        sigs = set()
                        for n in alive:
                            s = signatures[n]
                            if s & 1:
                                s ^= sig_mask
                            sigs.add(s)
                        if len(sigs) > 1:
                            splits += 1
                    refine_span.annotate(patterns=n_patterns, splits=splits)
                registry.inc("cec.refine.rounds")
                registry.inc("cec.refine.patterns", n_patterns)
                registry.inc("cec.refine.splits", splits)
                bump_gauge(
                    "cec.phase.refine.seconds", time.perf_counter() - t_refine
                )
                round_no += 1
                continue
            if deferred_this_round and refining:
                # No usable model came back (e.g. a lost worker swallowed
                # it) but queries were deferred on its account: finish
                # them in one last non-deferring pass.
                force_final = True
                continue
            break
        registry.inc("cec.refine.queries_saved", len(deferred_open))
    stats["sweep_merges"] = registry.counter("cec.sweep.merges")
    stats["sweep_refuted"] = registry.counter("cec.sweep.refuted")
    stats["sweep_unknown"] = registry.counter("cec.sweep.unknown")

    # Final output checks.
    t_out = time.perf_counter()
    with tracer.span("cec.phase.outputs", cat="phase"):
        if budget is not None:
            result = _check_outputs_cascade(
                miter,
                aig,
                solver,
                lit2cnf,
                proof_cache,
                conflict_limit,
                budget,
                registry,
                tracer,
                sim_width,
                seed,
            )
        else:
            result = _check_outputs_classic(
                miter,
                aig,
                solver,
                lit2cnf,
                proof_cache,
                conflict_limit,
                registry,
                tracer,
            )
    registry.set_gauge("cec.phase.outputs.seconds", time.perf_counter() - t_out)
    return finish(result)


def check_miter_unsat(
    miter_circuit: Circuit, conflict_limit: Optional[int] = None
) -> CheckResult:
    """Check a single-output miter circuit (output must be constant 0)."""
    from repro.sat.tseitin import tseitin_encode

    if len(miter_circuit.outputs) != 1:
        raise ValueError("miter circuit must have exactly one output")
    t0 = time.perf_counter()
    enc = tseitin_encode(miter_circuit)
    solver = Solver()
    if not solver.add_cnf(enc.cnf):
        return CheckResult(CecVerdict.EQUIVALENT, stats={"time": 0.0})
    out_lit = enc.lit(miter_circuit.outputs[0])
    res = solver.solve(assumptions=[out_lit], conflict_limit=conflict_limit)
    stats = {"time": time.perf_counter() - t0}
    if solver.last_unknown:
        return CheckResult(CecVerdict.UNKNOWN, stats=stats)
    if res.satisfiable:
        assert res.model is not None
        cex = {pi: res.model[enc.var_of[pi]] for pi in miter_circuit.inputs}
        return CheckResult(
            CecVerdict.NOT_EQUIVALENT, counterexample=cex, stats=stats
        )
    return CheckResult(CecVerdict.EQUIVALENT, stats=stats)


def check_equivalence_bdd(
    c1: Circuit, c2: Circuit, node_limit: Optional[int] = None
) -> CheckResult:
    """BDD-based equivalence check (for small circuits / cross-checks).

    Inputs are matched by name over the union of both input sets (an input
    swept away on one side is simply irrelevant there); output sets must
    match exactly.  ``node_limit`` caps the manager's live node count; a
    blow-up past it yields UNKNOWN with reason ``"bdd-blowup"`` instead of
    an unbounded build.
    """
    if set(c1.outputs) != set(c2.outputs):
        raise ValueError("circuits must share output names")
    t0 = time.perf_counter()
    manager = BDD(node_limit=node_limit)
    try:
        nodes1 = circuit_bdds(c1, manager)
        nodes2 = circuit_bdds(c2, manager)
        all_inputs = sorted(set(c1.inputs) | set(c2.inputs))
        for out in sorted(set(c1.outputs)):
            if nodes1[out] != nodes2[out]:
                diff = manager.apply_xor(nodes1[out], nodes2[out])
                assignment = manager.pick_minterm(diff) or {}
                cex = {pi: assignment.get(pi, False) for pi in all_inputs}
                return CheckResult(
                    CecVerdict.NOT_EQUIVALENT,
                    counterexample=cex,
                    failing_output=out,
                    stats={"time": time.perf_counter() - t0},
                )
    except BddBlowupError:
        return CheckResult(
            CecVerdict.UNKNOWN,
            reason=REASON_BDD_BLOWUP,
            stats={"time": time.perf_counter() - t0},
        )
    return CheckResult(
        CecVerdict.EQUIVALENT, stats={"time": time.perf_counter() - t0}
    )
