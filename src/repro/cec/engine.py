"""The combinational equivalence-checking engine."""

from __future__ import annotations

import enum
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.aig.aig import AIG
from repro.bdd.bdd import BDD
from repro.bdd.circuit2bdd import circuit_bdds
from repro.cec.cache import EQ, NEQ, ProofCache
from repro.cec.miter import MiterAIG, build_miter
from repro.cec.parallel import UNKNOWN, UnitResult, sweep_units_parallel
from repro.cec.partition import Candidate, WorkUnit, partition_candidates
from repro.netlist.circuit import Circuit
from repro.sat.solver import Solver

__all__ = [
    "CecVerdict",
    "CheckResult",
    "EngineStats",
    "check_equivalence",
    "check_equivalence_bdd",
    "check_miter_unsat",
]


class CecVerdict(enum.Enum):
    EQUIVALENT = "equivalent"
    NOT_EQUIVALENT = "not_equivalent"
    UNKNOWN = "unknown"


@dataclass
class EngineStats:
    """Per-check tracing: phase wall times, query counts, cache traffic.

    Threaded through :func:`check_equivalence` into
    :class:`CheckResult.stats` (flattened via :meth:`as_dict`) so the flow
    harnesses and the CLI can report where the engine spends its time and
    how much work the proof cache and the worker pool save.
    """

    n_jobs: int = 1
    n_units: int = 0
    sat_queries: int = 0
    sweep_candidates: int = 0
    sweep_merges: int = 0
    sweep_refuted: int = 0
    sweep_unknown: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    worker_seconds: List[float] = field(default_factory=list)
    parallel_wall: float = 0.0

    def worker_utilisation(self) -> float:
        """Busy fraction of the worker pool during the parallel sweep."""
        if not self.worker_seconds or self.parallel_wall <= 0 or self.n_jobs < 1:
            return 0.0
        busy = sum(self.worker_seconds)
        return min(1.0, busy / (self.parallel_wall * self.n_jobs))

    def as_dict(self) -> Dict[str, float]:
        """Flatten to the numeric key/value form ``CheckResult.stats`` uses."""
        out: Dict[str, float] = {
            "n_jobs": self.n_jobs,
            "n_units": self.n_units,
            "sat_queries": self.sat_queries,
            "sweep_candidates": self.sweep_candidates,
            "sweep_merges": self.sweep_merges,
            "sweep_refuted": self.sweep_refuted,
            "sweep_unknown": self.sweep_unknown,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_stores": self.cache_stores,
        }
        if self.worker_seconds:
            out["worker_utilisation"] = self.worker_utilisation()
        for phase, seconds in self.phase_seconds.items():
            out[f"time_{phase}"] = seconds
        return out


@dataclass
class CheckResult:
    """Outcome of an equivalence check."""

    verdict: CecVerdict
    counterexample: Optional[Dict[str, bool]] = None
    failing_output: Optional[str] = None
    stats: Dict[str, float] = field(default_factory=dict)
    engine: Optional[EngineStats] = None

    @property
    def equivalent(self) -> bool:
        """True when the verdict is EQUIVALENT."""
        return self.verdict is CecVerdict.EQUIVALENT

    def __bool__(self) -> bool:
        return self.equivalent


def _signature_classes(
    aig: AIG, rounds: int, width: int, seed: int
) -> Dict[int, List[int]]:
    """Partition AND nodes by normalised simulation signature.

    The signature of a node is the concatenation of its simulation words
    over several rounds, complemented if its first bit is 1 so that a node
    and its complement land in the same class.
    """
    signatures: Dict[int, int] = {}
    mask_total = 0
    for r in range(rounds):
        words, mask = aig.random_simulate(width=width, seed=seed + r)
        for node in range(1, aig.num_nodes()):
            signatures[node] = signatures.get(node, 0) << width | (
                words[node] & mask
            )
        mask_total = (mask_total << width) | mask
    classes: Dict[int, List[int]] = {}
    for node, sig in signatures.items():
        if sig & 1:
            sig ^= mask_total
        classes.setdefault(sig, []).append(node)
    return {sig: nodes for sig, nodes in classes.items() if len(nodes) > 1}


def _class_candidates(
    classes: Dict[int, List[int]], words: List[int]
) -> List[List[Candidate]]:
    """Candidate pairs per signature class (relative phase from ``words``)."""
    class_list: List[List[Candidate]] = []
    for nodes in classes.values():
        nodes.sort()
        rep = nodes[0]
        class_list.append(
            [
                Candidate(rep, node, phase_equal=words[node] == words[rep])
                for node in nodes[1:]
            ]
        )
    return class_list


def _sweep_unit_serial(
    solver: Solver,
    lit2cnf,
    unit: WorkUnit,
    conflict_limit: Optional[int],
) -> UnitResult:
    """Sweep one unit on the parent's incremental solver (the serial path)."""
    t0 = time.perf_counter()
    statuses: List[str] = []
    sat_queries = 0
    for cand in unit.candidates:
        a = lit2cnf(cand.rep_lit)
        b = lit2cnf(cand.node_lit)
        # UNSAT(a != b) in both directions means equal.
        r1 = solver.solve(assumptions=[a, -b], conflict_limit=conflict_limit)
        sat_queries += 1
        if r1.satisfiable:
            statuses.append(NEQ)
            continue
        if solver.last_unknown:
            statuses.append(UNKNOWN)
            continue
        r2 = solver.solve(assumptions=[-a, b], conflict_limit=conflict_limit)
        sat_queries += 1
        if r2.satisfiable:
            statuses.append(NEQ)
            continue
        if solver.last_unknown:
            statuses.append(UNKNOWN)
            continue
        # Proven equal: add merge clauses to help later queries.
        solver.add_clause([-a, b])
        solver.add_clause([a, -b])
        statuses.append(EQ)
    return UnitResult(statuses, sat_queries, time.perf_counter() - t0)


def _extract_counterexample(
    aig: AIG, model: Dict[int, bool], lit2cnf
) -> Dict[str, bool]:
    return {
        pi: bool(model.get(lit2cnf(2 * node), False))
        for node, pi in zip(aig.pis, aig.pi_names)
    }


def _validate_counterexample(
    aig: AIG, cex: Dict[str, bool], l1: int, l2: int, name: str
) -> None:
    """Re-simulate an extracted assignment; raise unless it distinguishes.

    A SAT model is only a counterexample if replaying it through the AIG
    actually drives the paired output literals apart — anything else means
    the encoding, the model extraction, or a cached merge is corrupt, and
    returning it would be reporting NOT_EQUIVALENT on fiction.
    """
    v1, v2 = aig.eval_literals([l1, l2], cex)
    if v1 == v2:
        raise RuntimeError(
            f"extracted counterexample does not distinguish output {name!r}; "
            "CEC engine state is inconsistent"
        )


def check_equivalence(
    c1: Circuit,
    c2: Circuit,
    sim_rounds: int = 4,
    sim_width: int = 64,
    sweep: bool = True,
    conflict_limit: Optional[int] = None,
    seed: int = 0,
    n_jobs: int = 1,
    cache: Union[None, str, os.PathLike, ProofCache] = None,
) -> CheckResult:
    """Check combinational equivalence of two circuits.

    The main entry point of the CEC substrate.  ``sweep=False`` skips the
    internal-equivalence SAT sweeping (pure monolithic SAT on the miter).
    ``n_jobs > 1`` partitions the sweep into cone-disjoint work units and
    proves them on a process pool (verdict-identical to ``n_jobs=1``).
    ``cache`` — a :class:`~repro.cec.cache.ProofCache` or a path to one —
    replays previously-proven candidate and output verdicts by structural
    cone hash, skipping their SAT queries entirely.
    """
    engine = EngineStats(n_jobs=max(1, int(n_jobs)))
    proof_cache = ProofCache.coerce(cache)
    t0 = time.perf_counter()
    miter = build_miter(c1, c2)
    engine.phase_seconds["build"] = time.perf_counter() - t0
    stats: Dict[str, float] = {
        "aig_nodes": miter.aig.num_nodes(),
        "aig_ands": miter.aig.num_ands(),
    }

    def finish(result: CheckResult) -> CheckResult:
        if proof_cache is not None:
            proof_cache.save()
        stats["time"] = time.perf_counter() - t0
        stats.update(engine.as_dict())
        result.stats = stats
        result.engine = engine
        return result

    if miter.trivially_equivalent:
        stats["structural"] = 1
        return finish(CheckResult(CecVerdict.EQUIVALENT))

    aig = miter.aig
    cnf, lit2cnf = aig.to_cnf()
    solver = Solver()
    if not solver.add_cnf(cnf):
        # The AIG CNF alone can only be UNSAT if something is deeply wrong.
        raise RuntimeError("inconsistent AIG encoding")

    def merge(a: int, b: int) -> None:
        solver.add_clause([-a, b])
        solver.add_clause([a, -b])

    if sweep:
        t_sim = time.perf_counter()
        classes = _signature_classes(aig, sim_rounds, sim_width, seed)
        # One simulation round determines relative phases for all classes.
        words, _ = aig.random_simulate(width=sim_width, seed=seed)
        class_list = _class_candidates(classes, words)
        engine.sweep_candidates = sum(len(cls) for cls in class_list)
        engine.phase_seconds["simulate"] = time.perf_counter() - t_sim

        # Cache pass: replay known verdicts, keep the rest for solving.
        if proof_cache is not None:
            t_cache = time.perf_counter()
            pending: List[List[Candidate]] = []
            for cls in class_list:
                keep: List[Candidate] = []
                for cand in cls:
                    key = aig.pair_cone_key(cand.rep_lit, cand.node_lit)
                    known = proof_cache.get(key)
                    if known == EQ:
                        engine.cache_hits += 1
                        engine.sweep_merges += 1
                        merge(lit2cnf(cand.rep_lit), lit2cnf(cand.node_lit))
                    elif known == NEQ:
                        engine.cache_hits += 1
                        engine.sweep_refuted += 1
                    else:
                        engine.cache_misses += 1
                        keep.append(cand)
                if keep:
                    pending.append(keep)
            class_list = pending
            engine.phase_seconds["cache"] = time.perf_counter() - t_cache

        t_part = time.perf_counter()
        units = partition_candidates(aig, class_list, engine.n_jobs)
        engine.n_units = len(units)
        engine.phase_seconds["partition"] = time.perf_counter() - t_part

        t_sweep = time.perf_counter()
        sweep_limit = conflict_limit or 2000
        if engine.n_jobs > 1 and len(units) > 1:
            results = sweep_units_parallel(
                solver, units, sweep_limit, engine.n_jobs
            )
            engine.parallel_wall = time.perf_counter() - t_sweep
        else:
            results = [
                _sweep_unit_serial(solver, lit2cnf, unit, sweep_limit)
                for unit in units
            ]
        for unit, result in zip(units, results):
            engine.worker_seconds.append(result.seconds)
            engine.sat_queries += result.sat_queries
            for cand, status in zip(unit.candidates, result.statuses):
                if status == EQ:
                    engine.sweep_merges += 1
                    if engine.n_jobs > 1 and len(units) > 1:
                        # Worker proofs happen off-solver; merge them here.
                        merge(lit2cnf(cand.rep_lit), lit2cnf(cand.node_lit))
                elif status == NEQ:
                    engine.sweep_refuted += 1
                else:
                    engine.sweep_unknown += 1
                if proof_cache is not None and status != UNKNOWN:
                    key = aig.pair_cone_key(cand.rep_lit, cand.node_lit)
                    proof_cache.put(key, status)
                    engine.cache_stores += 1
        engine.phase_seconds["sweep"] = time.perf_counter() - t_sweep
    stats["sweep_merges"] = engine.sweep_merges
    stats["sweep_refuted"] = engine.sweep_refuted
    stats["sweep_unknown"] = engine.sweep_unknown

    # Final output checks.
    t_out = time.perf_counter()
    for name, l1, l2 in miter.output_pairs:
        if l1 == l2:
            continue
        key: Optional[str] = None
        if proof_cache is not None:
            key = aig.pair_cone_key(l1, l2)
            if proof_cache.get(key) == EQ:
                engine.cache_hits += 1
                continue
            # A cached NEQ still needs a fresh model for the
            # counterexample, so only EQ skips the SAT work.
            engine.cache_misses += 1
        a = lit2cnf(l1)
        b = lit2cnf(l2)
        for assumptions in ([a, -b], [-a, b]):
            res = solver.solve(
                assumptions=assumptions, conflict_limit=conflict_limit
            )
            engine.sat_queries += 1
            if solver.last_unknown:
                engine.phase_seconds["outputs"] = time.perf_counter() - t_out
                return finish(CheckResult(CecVerdict.UNKNOWN))
            if res.satisfiable:
                assert res.model is not None
                cex = _extract_counterexample(aig, res.model, lit2cnf)
                _validate_counterexample(aig, cex, l1, l2, name)
                if proof_cache is not None and key is not None:
                    proof_cache.put(key, NEQ)
                    engine.cache_stores += 1
                engine.phase_seconds["outputs"] = time.perf_counter() - t_out
                return finish(
                    CheckResult(
                        CecVerdict.NOT_EQUIVALENT,
                        counterexample=cex,
                        failing_output=name,
                    )
                )
        if proof_cache is not None and key is not None:
            proof_cache.put(key, EQ)
            engine.cache_stores += 1
    engine.phase_seconds["outputs"] = time.perf_counter() - t_out
    return finish(CheckResult(CecVerdict.EQUIVALENT))


def check_miter_unsat(
    miter_circuit: Circuit, conflict_limit: Optional[int] = None
) -> CheckResult:
    """Check a single-output miter circuit (output must be constant 0)."""
    from repro.sat.tseitin import tseitin_encode

    if len(miter_circuit.outputs) != 1:
        raise ValueError("miter circuit must have exactly one output")
    t0 = time.perf_counter()
    enc = tseitin_encode(miter_circuit)
    solver = Solver()
    if not solver.add_cnf(enc.cnf):
        return CheckResult(CecVerdict.EQUIVALENT, stats={"time": 0.0})
    out_lit = enc.lit(miter_circuit.outputs[0])
    res = solver.solve(assumptions=[out_lit], conflict_limit=conflict_limit)
    stats = {"time": time.perf_counter() - t0}
    if solver.last_unknown:
        return CheckResult(CecVerdict.UNKNOWN, stats=stats)
    if res.satisfiable:
        assert res.model is not None
        cex = {pi: res.model[enc.var_of[pi]] for pi in miter_circuit.inputs}
        return CheckResult(
            CecVerdict.NOT_EQUIVALENT, counterexample=cex, stats=stats
        )
    return CheckResult(CecVerdict.EQUIVALENT, stats=stats)


def check_equivalence_bdd(c1: Circuit, c2: Circuit) -> CheckResult:
    """BDD-based equivalence check (for small circuits / cross-checks).

    Inputs are matched by name over the union of both input sets (an input
    swept away on one side is simply irrelevant there); output sets must
    match exactly.
    """
    if set(c1.outputs) != set(c2.outputs):
        raise ValueError("circuits must share output names")
    t0 = time.perf_counter()
    manager = BDD()
    nodes1 = circuit_bdds(c1, manager)
    nodes2 = circuit_bdds(c2, manager)
    all_inputs = sorted(set(c1.inputs) | set(c2.inputs))
    for out in sorted(set(c1.outputs)):
        if nodes1[out] != nodes2[out]:
            diff = manager.apply_xor(nodes1[out], nodes2[out])
            assignment = manager.pick_minterm(diff) or {}
            cex = {pi: assignment.get(pi, False) for pi in all_inputs}
            return CheckResult(
                CecVerdict.NOT_EQUIVALENT,
                counterexample=cex,
                failing_output=out,
                stats={"time": time.perf_counter() - t0},
            )
    return CheckResult(
        CecVerdict.EQUIVALENT, stats={"time": time.perf_counter() - t0}
    )
