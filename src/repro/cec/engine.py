"""The combinational equivalence-checking engine."""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.aig.aig import AIG
from repro.bdd.bdd import BDD
from repro.bdd.circuit2bdd import circuit_bdds
from repro.cec.miter import MiterAIG, build_miter
from repro.netlist.circuit import Circuit
from repro.sat.solver import Solver

__all__ = [
    "CecVerdict",
    "CheckResult",
    "check_equivalence",
    "check_equivalence_bdd",
    "check_miter_unsat",
]


class CecVerdict(enum.Enum):
    EQUIVALENT = "equivalent"
    NOT_EQUIVALENT = "not_equivalent"
    UNKNOWN = "unknown"


@dataclass
class CheckResult:
    """Outcome of an equivalence check."""

    verdict: CecVerdict
    counterexample: Optional[Dict[str, bool]] = None
    failing_output: Optional[str] = None
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def equivalent(self) -> bool:
        """True when the verdict is EQUIVALENT."""
        return self.verdict is CecVerdict.EQUIVALENT

    def __bool__(self) -> bool:
        return self.equivalent


def _signature_classes(
    aig: AIG, rounds: int, width: int, seed: int
) -> Dict[int, List[int]]:
    """Partition AND nodes by normalised simulation signature.

    The signature of a node is the concatenation of its simulation words
    over several rounds, complemented if its first bit is 1 so that a node
    and its complement land in the same class.
    """
    signatures: Dict[int, int] = {}
    mask_total = 0
    for r in range(rounds):
        words, mask = aig.random_simulate(width=width, seed=seed + r)
        for node in range(1, aig.num_nodes()):
            signatures[node] = signatures.get(node, 0) << width | (
                words[node] & mask
            )
        mask_total = (mask_total << width) | mask
    classes: Dict[int, List[int]] = {}
    for node, sig in signatures.items():
        if sig & 1:
            sig ^= mask_total
        classes.setdefault(sig, []).append(node)
    return {sig: nodes for sig, nodes in classes.items() if len(nodes) > 1}


def check_equivalence(
    c1: Circuit,
    c2: Circuit,
    sim_rounds: int = 4,
    sim_width: int = 64,
    sweep: bool = True,
    conflict_limit: Optional[int] = None,
    seed: int = 0,
) -> CheckResult:
    """Check combinational equivalence of two circuits.

    The main entry point of the CEC substrate.  ``sweep=False`` skips the
    internal-equivalence SAT sweeping (pure monolithic SAT on the miter).
    """
    t0 = time.perf_counter()
    miter = build_miter(c1, c2)
    stats: Dict[str, float] = {
        "aig_nodes": miter.aig.num_nodes(),
        "aig_ands": miter.aig.num_ands(),
    }
    if miter.trivially_equivalent:
        stats["time"] = time.perf_counter() - t0
        stats["structural"] = 1
        return CheckResult(CecVerdict.EQUIVALENT, stats=stats)

    aig = miter.aig
    cnf, lit2cnf = aig.to_cnf()
    solver = Solver()
    if not solver.add_cnf(cnf):
        # The AIG CNF alone can only be UNSAT if something is deeply wrong.
        raise RuntimeError("inconsistent AIG encoding")

    proved_merges = 0
    disproved = 0
    if sweep:
        classes = _signature_classes(aig, sim_rounds, sim_width, seed)
        # One simulation round determines relative phases for all classes.
        words, mask = aig.random_simulate(width=sim_width, seed=seed)
        # Sweep each class in topological order: try to prove each node
        # equal (or complementary) to the class representative.
        for nodes in classes.values():
            nodes.sort()
            rep = nodes[0]
            rep_lit = 2 * rep
            for node in nodes[1:]:
                phase_equal = words[node] == words[rep]
                node_lit = 2 * node if phase_equal else 2 * node + 1
                a = lit2cnf(rep_lit)
                b = lit2cnf(node_lit)
                # UNSAT(a != b) means equal.
                r1 = solver.solve(
                    assumptions=[a, -b], conflict_limit=conflict_limit or 2000
                )
                if r1.satisfiable or solver.last_unknown:
                    disproved += 1
                    continue
                r2 = solver.solve(
                    assumptions=[-a, b], conflict_limit=conflict_limit or 2000
                )
                if r2.satisfiable or solver.last_unknown:
                    disproved += 1
                    continue
                # Proven equal: add merge clauses to help later queries.
                solver.add_clause([-a, b])
                solver.add_clause([a, -b])
                proved_merges += 1
    stats["sweep_merges"] = proved_merges
    stats["sweep_refuted"] = disproved

    # Final output checks.
    for name, l1, l2 in miter.output_pairs:
        if l1 == l2:
            continue
        a = lit2cnf(l1)
        b = lit2cnf(l2)
        for assumptions in ([a, -b], [-a, b]):
            res = solver.solve(
                assumptions=assumptions, conflict_limit=conflict_limit
            )
            if solver.last_unknown:
                stats["time"] = time.perf_counter() - t0
                return CheckResult(CecVerdict.UNKNOWN, stats=stats)
            if res.satisfiable:
                assert res.model is not None
                cex = {
                    pi: res.model.get(lit2cnf(2 * node), False)
                    for node, pi in zip(aig.pis, aig.pi_names)
                }
                stats["time"] = time.perf_counter() - t0
                return CheckResult(
                    CecVerdict.NOT_EQUIVALENT,
                    counterexample=cex,
                    failing_output=name,
                    stats=stats,
                )
    stats["time"] = time.perf_counter() - t0
    return CheckResult(CecVerdict.EQUIVALENT, stats=stats)


def check_miter_unsat(
    miter_circuit: Circuit, conflict_limit: Optional[int] = None
) -> CheckResult:
    """Check a single-output miter circuit (output must be constant 0)."""
    from repro.sat.tseitin import tseitin_encode

    if len(miter_circuit.outputs) != 1:
        raise ValueError("miter circuit must have exactly one output")
    t0 = time.perf_counter()
    enc = tseitin_encode(miter_circuit)
    solver = Solver()
    if not solver.add_cnf(enc.cnf):
        return CheckResult(CecVerdict.EQUIVALENT, stats={"time": 0.0})
    out_lit = enc.lit(miter_circuit.outputs[0])
    res = solver.solve(assumptions=[out_lit], conflict_limit=conflict_limit)
    stats = {"time": time.perf_counter() - t0}
    if solver.last_unknown:
        return CheckResult(CecVerdict.UNKNOWN, stats=stats)
    if res.satisfiable:
        assert res.model is not None
        cex = {pi: res.model[enc.var_of[pi]] for pi in miter_circuit.inputs}
        return CheckResult(
            CecVerdict.NOT_EQUIVALENT, counterexample=cex, stats=stats
        )
    return CheckResult(CecVerdict.EQUIVALENT, stats=stats)


def check_equivalence_bdd(c1: Circuit, c2: Circuit) -> CheckResult:
    """BDD-based equivalence check (for small circuits / cross-checks)."""
    if set(c1.inputs) != set(c2.inputs) or set(c1.outputs) != set(c2.outputs):
        raise ValueError("circuits must share input/output names")
    t0 = time.perf_counter()
    manager = BDD()
    nodes1 = circuit_bdds(c1, manager)
    nodes2 = circuit_bdds(c2, manager)
    for out in sorted(set(c1.outputs)):
        if nodes1[out] != nodes2[out]:
            diff = manager.apply_xor(nodes1[out], nodes2[out])
            assignment = manager.pick_minterm(diff) or {}
            cex = {pi: assignment.get(pi, False) for pi in c1.inputs}
            return CheckResult(
                CecVerdict.NOT_EQUIVALENT,
                counterexample=cex,
                failing_output=out,
                stats={"time": time.perf_counter() - t0},
            )
    return CheckResult(
        CecVerdict.EQUIVALENT, stats={"time": time.perf_counter() - t0}
    )
