"""The combinational equivalence-checking engine.

Every proof obligation (sweep candidate or output pair) is resource
governed when a :class:`~repro.runtime.Budget` is supplied: obligations
walk an explicit fallback cascade — structural hash → simulation
refutation → bounded BDD → bounded SAT — and a cascade that runs dry
records an UNKNOWN verdict with a reason code instead of raising or
hanging.  Without a budget the engine behaves exactly as before,
bit-for-bit.

Observability: the engine counts everything into one
:class:`~repro.obs.metrics.MetricsRegistry` (the canonical sink; the
``cec.*`` names are catalogued in ``docs/OBSERVABILITY.md``) and, when a
:class:`~repro.obs.trace.Tracer` is passed, emits a span tree —
``cec.check`` (pair) → ``cec.phase.*`` → ``cec.obligation`` →
``stage.sim`` / ``stage.bdd`` / ``stage.sat`` — plus instants for budget
exhaustion and lost/requeued sweep units.  :class:`EngineStats` survives
as the backward-compatible flat view, rebuilt from the registry at
finish (:meth:`EngineStats.from_metrics`), so ``CheckResult.stats`` and
``CheckResult.engine`` consumers see exactly what they always did.  The
default tracer is the no-op :data:`~repro.obs.trace.NULL_TRACER`, so the
uninstrumented path stays unchanged.
"""

from __future__ import annotations

import enum
import hashlib
import os
import random
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.aig.aig import AIG
from repro.aig.rewrite import preprocess_miter
from repro.bdd.bdd import BDD
from repro.bdd.circuit2bdd import circuit_bdds
from repro.cec.cache import EQ, NEQ, ProofCache
from repro.cec.dispatch import (
    DispatchPolicy,
    OutcomeStore,
    coerce_policy,
)
from repro.cec.engines import (
    DEFAULT_BDD_NODE_LIMIT,
    PASS,
    EngineAdapter,
    EngineContext,
    Obligation,
    bdd_decide_pair,
    extract_counterexample,
    lit_word,
    resolve_portfolio,
    sim_refute_pair,
    validate_counterexample,
)
from repro.cec.miter import MiterAIG, build_miter
from repro.cec.parallel import (
    DEFERRED,
    UNKNOWN,
    UnitResult,
    sweep_units_parallel,
)
from repro.cec.partition import Candidate, WorkUnit, partition_candidates
from repro.netlist.circuit import Circuit
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer, coerce_tracer
from repro.runtime.budget import (
    REASON_BDD_BLOWUP,
    REASON_RESOURCE_LIMIT,
    REASON_TIMEOUT,
    Budget,
)
from repro.runtime.errors import BddBlowupError
from repro.sat.cores import CoreIndex, core_retires
from repro.sat.solver import Solver

__all__ = [
    "CecVerdict",
    "CheckResult",
    "EngineStats",
    "check_equivalence",
    "check_equivalence_bdd",
    "check_miter_unsat",
]

#: Cap on counterexample-guided refinement rounds.  Each round appends the
#: previous round's refuting SAT models as simulation columns and
#: re-splits the surviving signature classes; the loop converges as soon
#: as a round yields no new pattern, so this cap only bounds adversarial
#: worst cases.
DEFAULT_REFINE_ROUNDS = 8

#: Cap on the cross-worker shared-clause pool.  Clause sharing is an
#: accelerator; past this point the payload cost of shipping more peer
#: clauses outweighs their pruning value, so later exports are dropped.
SHARED_POOL_CAP = 4096

#: EngineStats counter field → canonical registry metric.  One table used
#: in both directions so the flat stats view and the metrics sink can
#: never drift apart.
_COUNTER_METRICS: Dict[str, str] = {
    "sat_queries": "cec.sat_queries",
    "sweep_candidates": "cec.sweep.candidates",
    "sweep_merges": "cec.sweep.merges",
    "sweep_refuted": "cec.sweep.refuted",
    "sweep_unknown": "cec.sweep.unknown",
    "cache_hits": "cec.cache.hits",
    "cache_misses": "cec.cache.misses",
    "cache_stores": "cec.cache.stores",
    "refine_rounds": "cec.refine.rounds",
    "refine_patterns": "cec.refine.patterns",
    "refine_splits": "cec.refine.splits",
    "refine_saved": "cec.refine.queries_saved",
    "preprocess_removed": "cec.preprocess.nodes_removed",
    "cascade_sim": "cec.cascade.sim",
    "cascade_bdd": "cec.cascade.bdd",
    "cascade_sat": "cec.cascade.sat",
    "core_retired": "cec.sat.core_retired",
    "shared_clauses_exported": "cec.parallel.shared_clauses_exported",
    "shared_clauses_imported": "cec.parallel.shared_clauses_imported",
    "shared_clauses_folded": "cec.parallel.shared_clauses_folded",
    "bdd_blowups": "cec.bdd_blowups",
    "budget_exhausted": "cec.budget_exhausted",
    "worker_failures": "cec.worker.failures",
    "worker_timeouts": "cec.worker.timeouts",
    "worker_retries": "cec.worker.retries",
    "units_requeued": "cec.worker.requeued",
    "pool_failures": "cec.worker.pool_failures",
}

#: Parallel-sweep telemetry key (from ``sweep_units_parallel``) → metric.
_TELEMETRY_METRICS: Dict[str, str] = {
    "worker_failures": "cec.worker.failures",
    "worker_timeouts": "cec.worker.timeouts",
    "worker_retries": "cec.worker.retries",
    "units_requeued": "cec.worker.requeued",
    "pool_failures": "cec.worker.pool_failures",
}

_PHASE_PREFIX = "cec.phase."
_PHASE_SUFFIX = ".seconds"
_WORKER_SECONDS = "cec.worker.seconds"
_ENGINE_PREFIX = "cec.engine."
_ENGINE_DECIDED_SUFFIX = ".decided"


class CecVerdict(enum.Enum):
    EQUIVALENT = "equivalent"
    NOT_EQUIVALENT = "not_equivalent"
    UNKNOWN = "unknown"


@dataclass
class EngineStats:
    """Per-check tracing: phase wall times, query counts, cache traffic.

    Threaded through :func:`check_equivalence` into
    :class:`CheckResult.stats` (flattened via :meth:`as_dict`) so the flow
    harnesses and the CLI can report where the engine spends its time and
    how much work the proof cache and the worker pool save.

    This is now a *view*: the engine counts into a
    :class:`~repro.obs.metrics.MetricsRegistry` and rebuilds this object
    from it at finish (:meth:`from_metrics`).
    """

    n_jobs: int = 1
    n_units: int = 0
    sat_queries: int = 0
    sweep_candidates: int = 0
    sweep_merges: int = 0
    sweep_refuted: int = 0
    sweep_unknown: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    # Counterexample-guided refinement (fraiging) telemetry.
    refine_rounds: int = 0
    refine_patterns: int = 0
    refine_splits: int = 0
    refine_saved: int = 0
    # Cascade outcomes (budgeted and classic checks alike).
    cascade_sim: int = 0
    cascade_bdd: int = 0
    cascade_sat: int = 0
    # Assumption-core retirement and cross-worker clause sharing.
    core_retired: int = 0
    shared_clauses_exported: int = 0
    shared_clauses_imported: int = 0
    shared_clauses_folded: int = 0
    bdd_blowups: int = 0
    budget_exhausted: int = 0
    # Fault-tolerance telemetry from the parallel sweep.
    worker_failures: int = 0
    worker_timeouts: int = 0
    worker_retries: int = 0
    units_requeued: int = 0
    pool_failures: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    worker_seconds: List[float] = field(default_factory=list)
    parallel_wall: float = 0.0
    #: Output obligations decided per engine adapter name (from the
    #: ``cec.engine.<name>.decided`` counters); sweep-decided candidates
    #: are not included — they are always SAT-decided by construction.
    engines_used: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_metrics(cls, metrics: MetricsRegistry) -> "EngineStats":
        """Rebuild the flat stats view from the canonical metric names."""
        stats = cls()
        for field_name, metric in _COUNTER_METRICS.items():
            setattr(stats, field_name, int(metrics.counter(metric)))
        stats.n_jobs = int(metrics.gauge("cec.n_jobs", 1))
        stats.n_units = int(metrics.gauge("cec.n_units", 0))
        stats.parallel_wall = metrics.gauge("cec.parallel.wall_seconds", 0.0)
        for name in metrics.names():
            if name.startswith(_PHASE_PREFIX) and name.endswith(_PHASE_SUFFIX):
                phase = name[len(_PHASE_PREFIX) : -len(_PHASE_SUFFIX)]
                stats.phase_seconds[phase] = metrics.gauge(name)
            elif name.startswith(_ENGINE_PREFIX) and name.endswith(
                _ENGINE_DECIDED_SUFFIX
            ):
                engine = name[
                    len(_ENGINE_PREFIX) : -len(_ENGINE_DECIDED_SUFFIX)
                ]
                stats.engines_used[engine] = int(metrics.counter(name))
        stats.worker_seconds = metrics.series(_WORKER_SECONDS)
        return stats

    def worker_utilisation(self) -> float:
        """Busy fraction of the worker pool during the parallel sweep."""
        if not self.worker_seconds or self.parallel_wall <= 0 or self.n_jobs < 1:
            return 0.0
        busy = sum(self.worker_seconds)
        return min(1.0, busy / (self.parallel_wall * self.n_jobs))

    def as_dict(self) -> Dict[str, float]:
        """Flatten to the numeric key/value form ``CheckResult.stats`` uses.

        Every canonical counter appears, zero or not — consumers can rely
        on the key set being identical across runs; anything that wants a
        compact view suppresses zeros at *render* time (see
        ``repro.flows.report.compact_stats``).
        """
        out: Dict[str, float] = {"n_jobs": self.n_jobs, "n_units": self.n_units}
        for key in _COUNTER_METRICS:
            out[key] = getattr(self, key)
        if self.worker_seconds:
            out["worker_utilisation"] = self.worker_utilisation()
        for phase, seconds in self.phase_seconds.items():
            out[f"time_{phase}"] = seconds
        for engine, count in sorted(self.engines_used.items()):
            out[f"engine_{engine}"] = count
        return out


@dataclass
class CheckResult:
    """Outcome of an equivalence check.

    ``reason`` carries the machine-readable cause of an UNKNOWN verdict
    (a ``REASON_*`` code from :mod:`repro.runtime.budget`); it is None for
    decided verdicts.

    Implements the common verification-result protocol
    (:class:`repro.api.VerificationResult`): ``verdict`` / ``reason`` /
    ``stats`` / ``counterexample`` / ``failing_output`` / ``equivalent`` /
    :meth:`as_dict`, shared with
    :class:`repro.core.verify.SeqCheckResult`.
    """

    verdict: CecVerdict
    counterexample: Optional[Dict[str, bool]] = None
    failing_output: Optional[str] = None
    stats: Dict[str, float] = field(default_factory=dict)
    engine: Optional[EngineStats] = None
    reason: Optional[str] = None

    #: Combinational checks have one proving method; present so the
    #: canonical ``as_dict()`` key set matches ``SeqCheckResult``'s.
    method: str = "cec"

    @property
    def equivalent(self) -> bool:
        """True when the verdict is EQUIVALENT."""
        return self.verdict is CecVerdict.EQUIVALENT

    def __bool__(self) -> bool:
        return self.equivalent

    def as_dict(self) -> Dict[str, object]:
        """Canonical JSON-able form: the one key set every result type uses.

        The keys are exactly ``repro.api.RESULT_KEYS`` — ``verdict`` (the
        enum's string value), ``method``, ``reason``, ``counterexample``
        (here a single input assignment), ``failing_output`` and
        ``stats``.  :attr:`engine` is a live-object view and deliberately
        not part of the serialised form; its content is already flattened
        into :attr:`stats`.
        """
        return {
            "verdict": self.verdict.value,
            "method": self.method,
            "reason": self.reason,
            "counterexample": (
                dict(self.counterexample)
                if self.counterexample is not None
                else None
            ),
            "failing_output": self.failing_output,
            "stats": dict(self.stats),
        }


def _round_seed(seed: int, r: int) -> int:
    """Mix ``(seed, r)`` into an independent per-round pattern seed.

    Plain ``seed + r`` makes round ``r`` of seed ``s`` identical to round
    0 of seed ``s + r``, so neighbouring seeds share most of their
    pattern stream.  Hash mixing keeps runs deterministic (hashlib, so no
    ``PYTHONHASHSEED`` dependence) while making the streams of different
    ``(seed, round)`` pairs independent.
    """
    digest = hashlib.blake2b(
        f"{seed}/{r}".encode("ascii"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def _initial_signatures(
    aig: AIG, rounds: int, width: int, seed: int
) -> Tuple[List[int], int]:
    """Multi-round simulation signatures for every node.

    Returns ``(signatures, mask)`` where ``signatures[n]`` concatenates
    node ``n``'s simulation words over all rounds.  Every node gets a
    signature — including constant node 0 (always 0) and the PIs — so
    stuck-at-constant nodes join the constant's class and are proven
    against the constant directly instead of pairwise.

    All rounds are packed into one wide corpus (round ``r`` occupies bit
    columns ``[(rounds-1-r)*width, (rounds-r)*width)``, so round 0 stays
    most significant) and evaluated in a single
    :meth:`~repro.aig.aig.AIG.simulate_words` call — one pass over the
    AIG, vectorised when the numpy kernel is available.  Bit-identical
    to the historical per-round shift-and-concatenate loop.
    """
    pi_words = {name: 0 for name in aig.pi_names}
    for r in range(rounds):
        rng = random.Random(_round_seed(seed, r))
        shift = (rounds - 1 - r) * width
        for name in aig.pi_names:
            pi_words[name] |= rng.getrandbits(width) << shift
    total_width = rounds * width
    return aig.simulate_words(pi_words, total_width), (1 << total_width) - 1


def _signature_classes(
    signatures: Sequence[int], mask: int, nodes: Sequence[int]
) -> Dict[int, List[int]]:
    """Partition ``nodes`` by normalised signature.

    A signature whose first bit is 1 is complemented so a node and its
    complement land in the same class.  Only classes with at least two
    members survive; members are listed in node order.
    """
    classes: Dict[int, List[int]] = {}
    for node in sorted(nodes):
        sig = signatures[node]
        if sig & 1:
            sig ^= mask
        classes.setdefault(sig, []).append(node)
    return {
        sig: members for sig, members in classes.items() if len(members) > 1
    }


def _class_candidates(
    aig: AIG,
    classes: Dict[int, List[int]],
    signatures: Sequence[int],
    resolved: Optional[Set[Tuple[int, int, bool]]] = None,
    group_offset: int = 0,
) -> List[List[Candidate]]:
    """Candidate pairs per signature class.

    The representative is the class's smallest node — constant node 0
    when present, so constant-equivalent nodes merge with the constant.
    Relative phase comes from the full multi-round signature (raw
    signatures equal means same phase; the class already folded the
    complement in).  Pairs of two non-AND nodes are skipped: two distinct
    PIs, or a PI and the constant, are never equal, so their query is
    guaranteed SAT and proves nothing.  ``resolved`` drops pairs an
    earlier refinement round already decided; ``group_offset`` keeps
    class (group) ids unique across rounds.
    """
    class_list: List[List[Candidate]] = []
    group = group_offset
    for members in classes.values():
        rep = members[0]
        rep_is_and = rep != 0 and not aig.is_pi_node(rep)
        cls: List[Candidate] = []
        for node in members[1:]:
            if not rep_is_and and aig.is_pi_node(node):
                continue
            phase = signatures[node] == signatures[rep]
            if resolved is not None and (rep, node, phase) in resolved:
                continue
            cls.append(Candidate(rep, node, phase_equal=phase, group=group))
        if cls:
            class_list.append(cls)
        group += 1
    return class_list


def _pair_key(cand: Candidate) -> Tuple[int, int, bool]:
    """Identity of a candidate query across refinement rounds."""
    return (cand.rep, cand.node, cand.phase_equal)


def _sweep_unit_serial(
    solver: Solver,
    lit2cnf,
    unit: WorkUnit,
    conflict_limit: Optional[int],
    deadline: Optional[float] = None,
    defer: bool = False,
    collect_models: bool = False,
    pi_nodes: Optional[Sequence[int]] = None,
    engines: Optional[Sequence[str]] = None,
    cores: Optional[CoreIndex] = None,
) -> UnitResult:
    """Sweep one unit on the parent's incremental solver (the serial path).

    ``defer`` / ``collect_models`` mirror the worker path: after one NEQ
    in a signature class the class's remaining queries are deferred to
    the refinement loop, and refuting models are shipped back as
    ``{pi node: value}`` assignments (``pi_nodes`` lists the AIG's PI
    node ids; their CNF variable is ``node + 1``).  ``engines`` names the
    active portfolio: sweeping is SAT work, so a portfolio without the
    ``sat`` adapter leaves every candidate UNKNOWN (no merges, no
    queries) and the output checks settle things with whatever engines
    remain.

    ``cores`` is the run's shared :class:`~repro.sat.cores.CoreIndex`:
    a query direction subsumed by a known core (or containing a
    root-false assumption) is retired as UNSAT without a solver call —
    counted on :attr:`UnitResult.core_retired` — and every fresh UNSAT
    core feeds the index.
    """
    t0 = time.perf_counter()
    if engines is not None and "sat" not in engines:
        n = len(unit.candidates)
        return UnitResult(
            [UNKNOWN] * n,
            0,
            time.perf_counter() - t0,
            models=[None] * n if collect_models else None,
        )
    statuses: List[str] = []
    models: List[Optional[Dict[int, bool]]] = []
    refuted_groups: Set[int] = set()
    pi_vars = (
        [(node + 1, node) for node in pi_nodes]
        if collect_models and pi_nodes is not None
        else []
    )
    sat_queries = 0
    core_retired = 0

    def record_neq(model: Optional[Dict[int, bool]]) -> None:
        statuses.append(NEQ)
        if collect_models and model is not None:
            models.append(
                {node: bool(model.get(var, False)) for var, node in pi_vars}
            )
        else:
            models.append(None)

    def query(assumptions: List[int]):
        # One direction: "unsat" from a subsuming core or the solver,
        # "sat" with the model, "unknown" on a resource limit.
        nonlocal sat_queries, core_retired
        if core_retires(solver, cores, assumptions):
            core_retired += 1
            return "unsat", None
        res = solver.solve(
            assumptions=assumptions,
            conflict_limit=conflict_limit,
            deadline=deadline,
        )
        sat_queries += 1
        if solver.last_unknown:
            return "unknown", None
        if res.satisfiable:
            return "sat", res.model
        if cores is not None and res.core is not None:
            cores.add(res.core)
        return "unsat", None

    for cand in unit.candidates:
        if defer and cand.group in refuted_groups:
            statuses.append(DEFERRED)
            models.append(None)
            continue
        a = lit2cnf(cand.rep_lit)
        b = lit2cnf(cand.node_lit)
        # UNSAT(a != b) in both directions means equal.
        outcome, model = query([a, -b])
        if outcome == "sat":
            record_neq(model)
            refuted_groups.add(cand.group)
            continue
        if outcome == "unknown":
            statuses.append(UNKNOWN)
            models.append(None)
            continue
        outcome, model = query([-a, b])
        if outcome == "sat":
            record_neq(model)
            refuted_groups.add(cand.group)
            continue
        if outcome == "unknown":
            statuses.append(UNKNOWN)
            models.append(None)
            continue
        # Proven equal: add merge clauses to help later queries.
        solver.add_clause([-a, b])
        solver.add_clause([a, -b])
        statuses.append(EQ)
        models.append(None)
    return UnitResult(
        statuses,
        sat_queries,
        time.perf_counter() - t0,
        models=models if collect_models else None,
        core_retired=core_retired,
    )


def _model_to_pattern(aig: AIG, model: Dict[int, bool]) -> Dict[str, bool]:
    """Translate a ``{pi node: value}`` model into a named PI assignment.

    PIs outside the refuting query's cone are unconstrained; they default
    to False so the pattern is total and deterministic.
    """
    return {
        name: bool(model.get(node, False))
        for node, name in zip(aig.pis, aig.pi_names)
    }


def _refine_signatures(
    aig: AIG,
    signatures: Sequence[int],
    mask: int,
    collected: Sequence[Tuple[Candidate, Dict[str, bool]]],
) -> Tuple[List[int], int, int]:
    """Append one sweep round's refuting models as new signature columns.

    ``collected`` pairs each NEQ candidate with the PI assignment its SAT
    model produced.  Every model is validated by re-simulation before any
    column lands in the signatures — its column must actually drive the
    pair's literals apart, mirroring :func:`_validate_counterexample` —
    because refining on a fictitious pattern would silently degrade class
    quality while a bogus model means the engine state is corrupt.
    Duplicate assignments are folded into one column.  Returns the new
    ``(signatures, mask, patterns_added)``.
    """
    unique: List[Dict[str, bool]] = []
    column_of: Dict[Tuple[bool, ...], int] = {}
    columns: List[int] = []
    for _, pattern in collected:
        key = tuple(bool(pattern.get(name, False)) for name in aig.pi_names)
        index = column_of.get(key)
        if index is None:
            index = len(unique)
            column_of[key] = index
            unique.append(pattern)
        columns.append(index)
    words, new_mask = aig.simulate_patterns(unique)

    def lit_bit(lit: int, column: int) -> int:
        return ((words[lit >> 1] >> column) & 1) ^ (lit & 1)

    for (cand, _), column in zip(collected, columns):
        if lit_bit(cand.rep_lit, column) == lit_bit(cand.node_lit, column):
            raise RuntimeError(
                f"sweep NEQ model for pair ({cand.rep}, {cand.node}) does "
                "not distinguish it under re-simulation; CEC engine state "
                "is inconsistent"
            )
    width = len(unique)
    refined = [
        (sig << width) | (words[node] & new_mask)
        for node, sig in enumerate(signatures)
    ]
    return refined, (mask << width) | new_mask, width


# Backward-compatible aliases: the stage helpers moved into the engines
# package (repro.cec.engines) when the ladder became an adapter
# portfolio; tests and downstream code import them from here.
_extract_counterexample = extract_counterexample
_validate_counterexample = validate_counterexample
_lit_word = lit_word
_sim_refute_pair = sim_refute_pair
_bdd_decide_pair = bdd_decide_pair


def _check_outputs_portfolio(
    miter: MiterAIG,
    aig: AIG,
    solver: Solver,
    lit2cnf,
    proof_cache: Optional[ProofCache],
    conflict_limit: Optional[int],
    budget: Optional[Budget],
    metrics: MetricsRegistry,
    tracer: Union[Tracer, NullTracer],
    sim_width: int,
    seed: int,
    adapters: Sequence[EngineAdapter],
    policy: DispatchPolicy,
    cores: Optional[CoreIndex] = None,
) -> CheckResult:
    """Output checks over a pluggable engine portfolio.

    Each output pair walks the adapters in the order the dispatch policy
    picks for it.  Whatever engine decides the pair records its verdict;
    an engine that cannot decide passes the pair along; an UNKNOWN stops
    the whole check (budget-governed checks report the exhausted
    resource as the reason code — nothing in here raises on resource
    exhaustion).  With the default ``"cascade"`` policy this reproduces
    the historical ladder bit for bit: structural → sim → BDD → SAT when
    budgeted, structural (cache) → plain SAT otherwise.
    """
    ctx = EngineContext(
        aig=aig,
        solver=solver,
        lit2cnf=lit2cnf,
        proof_cache=proof_cache,
        metrics=metrics,
        tracer=tracer,
        budget=budget,
        conflict_limit=conflict_limit,
        sim_width=sim_width,
        seed=seed,
        cores=cores,
    )
    budgeted = budget is not None
    skip_identical = any(a.name == "structural" for a in adapters)

    def record(ob: Obligation, verdict: str) -> None:
        if proof_cache is not None and ob.cache_key is not None:
            proof_cache.put(ob.cache_key, verdict)
            metrics.inc("cec.cache.stores")

    for name, l1, l2 in miter.output_pairs:
        if skip_identical and l1 == l2:
            # Structural stage 1: the miter already hashed both cones
            # onto one literal — decided before any span opens, exactly
            # as the historical ladder did.
            continue
        ob = Obligation(name=name, l1=l1, l2=l2)
        if proof_cache is not None:
            ob.cache_key = aig.pair_cone_key(l1, l2)
        with tracer.span(
            "cec.obligation", cat="obligation", output=name
        ) as span:
            if tracer.enabled:
                # Obligation features (cone size, sim width) feed the
                # per-obligation log — dispatch-policy training data.
                if budgeted:
                    span.annotate(cone=ob.cone(ctx), width=sim_width)
                else:
                    span.annotate(cone=ob.cone(ctx))
            decided_eq = False
            budget_checked = False
            for adapter in policy.order(ob, adapters, ctx):
                if budgeted and adapter.proving and not budget_checked:
                    # One wall check per pair, before the first proving
                    # engine (cache replays stay free, as always).
                    budget_checked = True
                    if budget.expired():
                        metrics.inc("cec.budget_exhausted")
                        tracer.instant(
                            "budget.exhausted",
                            output=name,
                            reason=REASON_TIMEOUT,
                        )
                        span.annotate(
                            verdict="unknown", reason=REASON_TIMEOUT
                        )
                        return CheckResult(
                            CecVerdict.UNKNOWN, reason=REASON_TIMEOUT
                        )
                metrics.inc(f"cec.engine.{adapter.name}.attempts")
                t_eng = time.perf_counter()
                if adapter.proving:
                    with tracer.span(
                        f"stage.{adapter.name}", cat="stage", output=name
                    ):
                        outcome = adapter.decide(ob, ctx)
                    policy.observe(
                        ob,
                        adapter.name,
                        outcome,
                        time.perf_counter() - t_eng,
                        ctx,
                    )
                else:
                    outcome = adapter.decide(ob, ctx)
                if outcome.status in (EQ, NEQ):
                    metrics.inc(f"cec.engine.{adapter.name}.decided")
                    span.annotate(
                        decided_by=outcome.via or adapter.name,
                        verdict=outcome.status,
                    )
                    if outcome.via not in ("cache", "structural"):
                        record(ob, outcome.status)
                    if outcome.status == NEQ:
                        return CheckResult(
                            CecVerdict.NOT_EQUIVALENT,
                            counterexample=outcome.counterexample,
                            failing_output=name,
                        )
                    decided_eq = True
                    break
                if outcome.status == UNKNOWN:
                    if budgeted:
                        reason = outcome.reason or REASON_TIMEOUT
                        metrics.inc("cec.budget_exhausted")
                        tracer.instant(
                            "budget.exhausted", output=name, reason=reason
                        )
                        span.annotate(verdict="unknown", reason=reason)
                        return CheckResult(
                            CecVerdict.UNKNOWN, reason=reason
                        )
                    span.annotate(verdict="unknown")
                    return CheckResult(
                        CecVerdict.UNKNOWN, reason=outcome.reason
                    )
                # PASS: the next engine in the order gets the pair.
            if not decided_eq:
                # The portfolio ran dry without a decision — e.g. a
                # sim-only portfolio on an equivalent pair.  UNKNOWN with
                # the generic resource code: no engine was *exhausted*,
                # the pool simply has no complete prover for this pair.
                span.annotate(
                    verdict="unknown", reason=REASON_RESOURCE_LIMIT
                )
                return CheckResult(
                    CecVerdict.UNKNOWN, reason=REASON_RESOURCE_LIMIT
                )
    return CheckResult(CecVerdict.EQUIVALENT)


def check_equivalence(
    c1: Circuit,
    c2: Circuit,
    sim_rounds: int = 4,
    sim_width: int = 64,
    sweep: bool = True,
    conflict_limit: Optional[int] = None,
    seed: int = 0,
    refine: bool = True,
    refine_rounds: int = DEFAULT_REFINE_ROUNDS,
    preprocess: bool = True,
    n_jobs: int = 1,
    cache: Union[None, str, os.PathLike, ProofCache] = None,
    budget: Union[None, int, float, Budget] = None,
    tracer: Union[None, Tracer, NullTracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    engines: Union[None, str, Sequence[str]] = None,
    dispatch_policy: Union[str, DispatchPolicy] = "cascade",
    dispatch_store: Union[None, str, os.PathLike, OutcomeStore] = None,
    share_learned: bool = True,
) -> CheckResult:
    """Check combinational equivalence of two circuits.

    The main entry point of the CEC substrate.  ``sweep=False`` skips the
    internal-equivalence SAT sweeping (pure monolithic SAT on the miter).
    ``n_jobs > 1`` partitions the sweep into cone-disjoint work units and
    proves them on a process pool (verdict-identical to ``n_jobs=1``).
    ``cache`` — a :class:`~repro.cec.cache.ProofCache` or a path to one —
    replays previously-proven candidate and output verdicts by structural
    cone hash, skipping their SAT queries entirely.

    ``refine`` (default on) closes the simulation↔solver loop FRAIG
    style: every refuting SAT model from the sweep is appended as a new
    simulation-pattern column, the surviving signature classes are
    re-split, and the sweep repeats until no new pattern appears (or
    ``refine_rounds`` is reached).  While refinement is active, one NEQ
    inside a signature class defers the class's remaining queries — the
    new pattern usually splits the class, so most deferred queries are
    never spent.  ``refine=False`` restores the single-pass sweep.

    ``preprocess`` (default on) rewrites the miter before any sweep —
    constant propagation, structural hashing, local two-level rewrites
    and dead-node elimination (:func:`repro.aig.rewrite.preprocess_miter`)
    — so every downstream phase works on a smaller AIG.  The rewrites
    are semantics-preserving, so verdicts with preprocessing on and off
    are identical; the AND-node reduction is recorded as
    ``cec.preprocess.nodes_removed``.  ``preprocess=False`` sweeps the
    raw miter.

    ``budget`` — a :class:`~repro.runtime.Budget` or bare wall-clock
    seconds — switches the output checks onto the fallback cascade
    (structural → simulation refutation → bounded BDD → bounded SAT) and
    bounds every SAT/BDD call; exhaustion yields an UNKNOWN verdict with
    ``CheckResult.reason`` set, never an exception or a hang.  With no
    budget, verdicts and stats are bit-for-bit what they always were.

    ``tracer`` — a :class:`~repro.obs.trace.Tracer` — records the span
    tree of the check (None means the no-op tracer: zero overhead beyond
    what the engine already measures).  ``metrics`` — a caller-owned
    :class:`~repro.obs.metrics.MetricsRegistry` — receives a merge of the
    check's full metric set at finish (the engine always counts into its
    own per-check registry first, so passing a shared registry across
    checks cannot corrupt any single check's stats).

    ``engines`` names the adapter portfolio for the output checks — a
    sequence (or comma-separated string) of registered engine names, see
    :func:`repro.cec.engines.available_engines`.  None (the default)
    lets the dispatch policy pick: the default ``"cascade"`` policy
    reproduces the historical ladder bit for bit (structural → sim →
    BDD → SAT when budgeted; structural → SAT otherwise).
    ``dispatch_policy`` selects how engines are ordered per obligation
    (``"cascade"``, ``"heuristic"``, or a
    :class:`~repro.cec.dispatch.DispatchPolicy` instance);
    ``dispatch_store`` — an :class:`~repro.cec.dispatch.OutcomeStore` or
    a path to one — records per-engine outcomes across runs so
    metrics-driven policies improve with use.  A portfolio without the
    ``sat`` adapter skips SAT sweeping entirely (sweeping is SAT work).
    Unknown engine or policy names raise :class:`ValueError` before any
    solving starts.

    Every UNSAT under assumptions feeds a shared
    :class:`~repro.sat.cores.CoreIndex`; sweep and output queries whose
    assumptions a known core subsumes are retired without a solver call
    (``cec.sat.core_retired``).  ``share_learned`` (default on) adds
    cross-worker clause sharing on top for parallel sweeps: each
    worker's short/low-LBD learned clauses join a deduplicated pool that
    seeds the next round's workers, respawned units, and — before the
    final output checks — the coordinator's own solver
    (``cec.parallel.shared_clauses_*``).  Both reduce work only; they
    never change a verdict.
    """
    tracer = coerce_tracer(tracer)
    caller_metrics = metrics
    registry = MetricsRegistry()
    n_jobs = max(1, int(n_jobs))
    registry.set_gauge("cec.n_jobs", n_jobs)
    proof_cache = ProofCache.coerce(cache)
    if proof_cache is not None:
        proof_cache.attach_metrics(registry)
    budget = Budget.coerce(budget)
    if budget is not None and budget.unlimited:
        budget = None  # an empty budget constrains nothing: classic path
    if budget is not None:
        budget.start()
    deadline = budget.deadline if budget is not None else None
    # Resolve the engine portfolio and dispatch policy up front so an
    # unknown name raises before any miter/solver work happens.
    store = OutcomeStore.coerce(dispatch_store)
    policy = coerce_policy(dispatch_policy, store=store)
    portfolio = resolve_portfolio(
        engines
        if engines is not None
        else policy.default_portfolio(budgeted=budget is not None)
    )
    engine_names = [adapter.name for adapter in portfolio]
    root = tracer.span(
        "cec.check",
        cat="pair",
        c1=getattr(c1, "name", ""),
        c2=getattr(c2, "name", ""),
        n_jobs=n_jobs,
        budgeted=budget is not None,
    )
    if policy.name != "cascade" or engines is not None:
        # Only non-default dispatch shows up in the trace: the default
        # run's span shape stays bit-identical to the pre-portfolio one.
        root.annotate(policy=policy.name, engines=",".join(engine_names))
    t0 = time.perf_counter()
    with tracer.span("cec.phase.build", cat="phase"):
        miter = build_miter(c1, c2)
    registry.set_gauge("cec.phase.build.seconds", time.perf_counter() - t0)
    stats: Dict[str, float] = {
        "aig_nodes": miter.aig.num_nodes(),
        "aig_ands": miter.aig.num_ands(),
    }

    def finish(result: CheckResult) -> CheckResult:
        if proof_cache is not None:
            try:
                proof_cache.save()
            except Exception as exc:  # noqa: BLE001 - the verdict is
                # already decided; losing cache persistence (full disk,
                # injected save fault) must not lose the answer.
                registry.inc("cec.cache.save_failures")
                warnings.warn(
                    f"proof cache save failed: {exc}; verdict unaffected",
                    RuntimeWarning,
                    stacklevel=2,
                )
        if store is not None:
            try:
                store.save()
            except Exception as exc:  # noqa: BLE001 - same contract as the
                # proof cache: dispatch telemetry is advisory, the
                # verdict is already decided.
                registry.inc("cec.dispatch.save_failures")
                warnings.warn(
                    "dispatch outcome-store save failed: "
                    f"{exc}; verdict unaffected",
                    RuntimeWarning,
                    stacklevel=2,
                )
        stats["time"] = time.perf_counter() - t0
        engine = EngineStats.from_metrics(registry)
        stats.update(engine.as_dict())
        result.stats = stats
        result.engine = engine
        if tracer.enabled:
            tracer.metrics(registry.as_flat_dict(), name="cec.metrics")
        root.annotate(verdict=result.verdict.value)
        if result.reason:
            root.annotate(reason=result.reason)
        root.close()
        if caller_metrics is not None:
            caller_metrics.merge(registry)
        return result

    if miter.trivially_equivalent:
        stats["structural"] = 1
        root.annotate(structural=True)
        return finish(CheckResult(CecVerdict.EQUIVALENT))

    if preprocess and (budget is None or not budget.expired()):
        t_pre = time.perf_counter()
        with tracer.span("cec.phase.preprocess", cat="phase"):
            miter, removed = preprocess_miter(miter)
        registry.set_gauge(
            "cec.phase.preprocess.seconds", time.perf_counter() - t_pre
        )
        registry.inc("cec.preprocess.nodes_removed", removed)
        stats["aig_ands_preprocessed"] = miter.aig.num_ands()
        if miter.trivially_equivalent:
            # The rewrites hashed every output pair onto one literal:
            # equivalence is now structural, no solver needed.
            stats["structural"] = 1
            root.annotate(structural=True, preprocessed=True)
            return finish(CheckResult(CecVerdict.EQUIVALENT))

    aig = miter.aig
    t_enc = time.perf_counter()
    with tracer.span("cec.phase.encode", cat="phase"):
        cnf, lit2cnf = aig.to_cnf()
        solver = Solver()
        solver.metrics = registry
        if not solver.add_cnf(cnf):
            # The AIG CNF alone can only be UNSAT if something is deeply wrong.
            raise RuntimeError("inconsistent AIG encoding")
    registry.set_gauge("cec.phase.encode.seconds", time.perf_counter() - t_enc)

    def merge(a: int, b: int) -> None:
        solver.add_clause([-a, b])
        solver.add_clause([a, -b])

    def bump_gauge(name: str, delta: float) -> None:
        registry.set_gauge(name, registry.gauge(name, 0.0) + delta)

    # Assumption cores discovered anywhere in this check (sweep, workers,
    # output pairs) accumulate here; every query consults the index
    # before burning a solver call.
    cores = CoreIndex()
    # Cross-worker clause pool: normalised clause → literals, insertion
    # ordered (dict semantics), capped so an adversarial run cannot grow
    # payloads without bound.
    shared_pool: Dict[Tuple[int, ...], List[int]] = {}

    if (
        sweep
        and "sat" in engine_names
        and (budget is None or not budget.expired())
    ):
        t_sim = time.perf_counter()
        with tracer.span("cec.phase.simulate", cat="phase"):
            signatures, sig_mask = _initial_signatures(
                aig, sim_rounds, sim_width, seed
            )
        sim_seconds = time.perf_counter() - t_sim
        registry.set_gauge("cec.phase.simulate.seconds", sim_seconds)
        # Throughput in 64-bit node-words: nodes × lanes / wall seconds.
        sim_lanes = max(1, (sim_rounds * sim_width + 63) // 64)
        if sim_seconds > 0:
            registry.set_gauge(
                "cec.sim.words_per_sec",
                aig.num_nodes() * sim_lanes / sim_seconds,
            )

        sweep_limit = conflict_limit or 2000
        if budget is not None and budget.sat_conflicts is not None:
            sweep_limit = min(sweep_limit, budget.sat_conflicts)

        # The refinement loop.  ``active`` holds nodes still eligible for
        # classes (EQ-proven nodes retire onto their representative);
        # ``resolved`` holds (rep, node, phase) queries already decided
        # so they are never re-derived; ``deferred_open`` tracks deferred
        # queries that have not reappeared — at exit, those are the SAT
        # queries refinement genuinely saved.
        active = set(range(aig.num_nodes()))
        resolved: Set[Tuple[int, int, bool]] = set()
        deferred_open: Set[Tuple[int, int, bool]] = set()
        group_offset = 0
        round_no = 0
        force_final = False
        while budget is None or not budget.expired():
            refining = refine and round_no < refine_rounds and not force_final
            # Policies that opt into sweep deferral (heuristic) keep the
            # one-NEQ-defers-the-class behaviour even in non-refining
            # rounds; deferred queries that never reappear are SAT
            # queries saved outright.
            defer_flag = refining or (policy.sweep_defer and not force_final)
            classes = _signature_classes(signatures, sig_mask, active)
            class_list = _class_candidates(
                aig, classes, signatures, resolved, group_offset
            )
            group_offset += len(classes)
            if not class_list:
                break
            registry.inc(
                "cec.sweep.candidates", sum(len(cls) for cls in class_list)
            )
            if deferred_open:
                # A deferred query that comes back as a candidate was not
                # saved after all; it is about to be solved (or deferred
                # again).
                for cls in class_list:
                    for cand in cls:
                        deferred_open.discard(_pair_key(cand))

            # Cache pass: replay known verdicts, keep the rest for solving.
            if proof_cache is not None:
                t_cache = time.perf_counter()
                with tracer.span("cec.phase.cache", cat="phase"):
                    pending: List[List[Candidate]] = []
                    for cls in class_list:
                        keep: List[Candidate] = []
                        for cand in cls:
                            key = aig.pair_cone_key(
                                cand.rep_lit, cand.node_lit
                            )
                            known = proof_cache.get(key)
                            if known == EQ:
                                registry.inc("cec.cache.hits")
                                registry.inc("cec.sweep.merges")
                                merge(
                                    lit2cnf(cand.rep_lit),
                                    lit2cnf(cand.node_lit),
                                )
                                active.discard(cand.node)
                            elif known == NEQ:
                                registry.inc("cec.cache.hits")
                                registry.inc("cec.sweep.refuted")
                                resolved.add(_pair_key(cand))
                            else:
                                registry.inc("cec.cache.misses")
                                keep.append(cand)
                        if keep:
                            pending.append(keep)
                    class_list = pending
                bump_gauge(
                    "cec.phase.cache.seconds", time.perf_counter() - t_cache
                )

            t_part = time.perf_counter()
            with tracer.span("cec.phase.partition", cat="phase"):
                units = partition_candidates(aig, class_list, n_jobs)
            registry.max_gauge("cec.n_units", len(units))
            bump_gauge(
                "cec.phase.partition.seconds", time.perf_counter() - t_part
            )

            t_sweep = time.perf_counter()
            sweep_span = tracer.span(
                "cec.phase.sweep",
                cat="phase",
                n_units=len(units),
                round=round_no,
            )
            parallel = n_jobs > 1 and len(units) > 1
            collect = tracer.enabled or caller_metrics is not None
            if parallel:
                wall_remaining = (
                    budget.remaining() if budget is not None else None
                )
                # The pool window is a backstop above the in-worker
                # deadline: it only fires when a worker is hung or dead,
                # so give it a little slack before killing the pool.
                unit_timeout = (
                    wall_remaining * 1.25 + 0.25
                    if wall_remaining is not None
                    else None
                )
                telemetry: Dict[str, int] = {}
                results = sweep_units_parallel(
                    solver,
                    units,
                    sweep_limit,
                    n_jobs,
                    wall_remaining=wall_remaining,
                    unit_timeout=unit_timeout,
                    telemetry=telemetry,
                    collect=collect,
                    trace_epoch=tracer.epoch,
                    defer=defer_flag,
                    collect_models=refining,
                    pi_nodes=aig.pis,
                    engines=engine_names,
                    shared_clauses=(
                        list(shared_pool.values()) if share_learned else None
                    ),
                    known_cores=cores.export(),
                )
                for tele_key, value in telemetry.items():
                    registry.inc(_TELEMETRY_METRICS[tele_key], value)
                bump_gauge(
                    "cec.parallel.wall_seconds", time.perf_counter() - t_sweep
                )
            else:
                results = [
                    _sweep_unit_serial(
                        solver,
                        lit2cnf,
                        unit,
                        sweep_limit,
                        deadline=deadline,
                        defer=defer_flag,
                        collect_models=refining,
                        pi_nodes=aig.pis,
                        engines=engine_names,
                        cores=cores,
                    )
                    for unit in units
                ]
            collected: List[Tuple[Candidate, Dict[str, bool]]] = []
            deferred_this_round = False
            # Signature-class width per group id (members + representative)
            # — an obligation feature for the per-candidate log below.
            group_width: Dict[int, int] = {}
            if tracer.enabled:
                for cls in class_list:
                    if cls:
                        group_width[cls[0].group] = len(cls) + 1
            for index, (unit, result) in enumerate(zip(units, results)):
                if result.events:
                    tracer.adopt(result.events, parent=sweep_span, worker=index)
                if result.metrics:
                    registry.merge(result.metrics)
                if result.error:
                    tracer.instant(
                        "sweep.unit.lost",
                        unit=index,
                        error=result.error,
                        retries=result.retries,
                    )
                elif result.retries:
                    tracer.instant(
                        "sweep.unit.requeued",
                        unit=index,
                        retries=result.retries,
                    )
                registry.append(_WORKER_SECONDS, result.seconds)
                registry.inc("cec.sat_queries", result.sat_queries)
                if result.core_retired:
                    registry.inc("cec.sat.core_retired", result.core_retired)
                # Fold the unit's solver knowledge home: cores join the
                # shared index (worker results arrive already remapped to
                # the parent's variable space), learned clauses join the
                # cross-worker pool for the next round and the final pass.
                cores.add_many(result.cores)
                if share_learned and result.learned:
                    registry.inc(
                        "cec.parallel.shared_clauses_exported",
                        len(result.learned),
                    )
                    for clause in result.learned:
                        if len(shared_pool) >= SHARED_POOL_CAP:
                            break
                        shared_pool.setdefault(
                            tuple(sorted(clause)), list(clause)
                        )
                if result.shared_imported:
                    registry.inc(
                        "cec.parallel.shared_clauses_imported",
                        result.shared_imported,
                    )
                for ci, (cand, status) in enumerate(
                    zip(unit.candidates, result.statuses)
                ):
                    if status == EQ:
                        registry.inc("cec.sweep.merges")
                        if parallel:
                            # Worker proofs happen off-solver; merge here.
                            merge(
                                lit2cnf(cand.rep_lit), lit2cnf(cand.node_lit)
                            )
                        active.discard(cand.node)
                    elif status == NEQ:
                        registry.inc("cec.sweep.refuted")
                        resolved.add(_pair_key(cand))
                        model = result.model_for(ci)
                        if refining and model is not None:
                            collected.append(
                                (cand, _model_to_pattern(aig, model))
                            )
                    elif status == DEFERRED:
                        deferred_this_round = True
                        deferred_open.add(_pair_key(cand))
                    else:
                        registry.inc("cec.sweep.unknown")
                        resolved.add(_pair_key(cand))
                    if proof_cache is not None and status in (EQ, NEQ):
                        key = aig.pair_cone_key(cand.rep_lit, cand.node_lit)
                        proof_cache.put(key, status)
                        registry.inc("cec.cache.stores")
                    if tracer.enabled:
                        # One feature record per sweep candidate; unit
                        # seconds are apportioned evenly — workers time
                        # the unit, not individual queries.  The serial
                        # path never computes unit cones, so derive the
                        # candidate's own cone instead.
                        tracer.instant(
                            "cec.obligation.features",
                            cat="obligation",
                            kind="sweep",
                            round=round_no,
                            unit=index,
                            group=cand.group,
                            width=group_width.get(cand.group, 2),
                            cone=len(
                                aig.cone_nodes(
                                    (cand.rep_lit, cand.node_lit)
                                )
                            ),
                            engine="sat",
                            verdict=status,
                            seconds=result.seconds
                            / max(1, len(unit.candidates)),
                        )
            sweep_span.annotate(
                merges=int(registry.counter("cec.sweep.merges")),
                refuted=int(registry.counter("cec.sweep.refuted")),
                unknown=int(registry.counter("cec.sweep.unknown")),
            )
            sweep_span.close()
            bump_gauge(
                "cec.phase.sweep.seconds", time.perf_counter() - t_sweep
            )

            if collected and refining:
                t_refine = time.perf_counter()
                with tracer.span(
                    "cec.phase.refine",
                    cat="phase",
                    round=round_no,
                    models=len(collected),
                ) as refine_span:
                    signatures, sig_mask, n_patterns = _refine_signatures(
                        aig, signatures, sig_mask, collected
                    )
                    splits = 0
                    for members in classes.values():
                        alive = [n for n in members if n in active]
                        if len(alive) < 2:
                            continue
                        sigs = set()
                        for n in alive:
                            s = signatures[n]
                            if s & 1:
                                s ^= sig_mask
                            sigs.add(s)
                        if len(sigs) > 1:
                            splits += 1
                    refine_span.annotate(patterns=n_patterns, splits=splits)
                registry.inc("cec.refine.rounds")
                registry.inc("cec.refine.patterns", n_patterns)
                registry.inc("cec.refine.splits", splits)
                bump_gauge(
                    "cec.phase.refine.seconds", time.perf_counter() - t_refine
                )
                round_no += 1
                continue
            if deferred_this_round and refining:
                # No usable model came back (e.g. a lost worker swallowed
                # it) but queries were deferred on its account: finish
                # them in one last non-deferring pass.
                force_final = True
                continue
            break
        registry.inc("cec.refine.queries_saved", len(deferred_open))
        if share_learned and shared_pool:
            # Fold the workers' pooled learned clauses into the
            # coordinator's solver so the final output queries start
            # from everything the fleet learned.
            folded = solver.import_learned(shared_pool.values())
            if folded:
                registry.inc("cec.parallel.shared_clauses_folded", folded)
    stats["sweep_merges"] = registry.counter("cec.sweep.merges")
    stats["sweep_refuted"] = registry.counter("cec.sweep.refuted")
    stats["sweep_unknown"] = registry.counter("cec.sweep.unknown")

    # Final output checks: walk the engine portfolio per output pair.
    t_out = time.perf_counter()
    with tracer.span("cec.phase.outputs", cat="phase"):
        result = _check_outputs_portfolio(
            miter,
            aig,
            solver,
            lit2cnf,
            proof_cache,
            conflict_limit,
            budget,
            registry,
            tracer,
            sim_width,
            seed,
            portfolio,
            policy,
            cores=cores,
        )
    registry.set_gauge("cec.phase.outputs.seconds", time.perf_counter() - t_out)
    return finish(result)


def check_miter_unsat(
    miter_circuit: Circuit, conflict_limit: Optional[int] = None
) -> CheckResult:
    """Check a single-output miter circuit (output must be constant 0)."""
    from repro.sat.tseitin import tseitin_encode

    if len(miter_circuit.outputs) != 1:
        raise ValueError("miter circuit must have exactly one output")
    t0 = time.perf_counter()
    enc = tseitin_encode(miter_circuit)
    solver = Solver()
    if not solver.add_cnf(enc.cnf):
        return CheckResult(CecVerdict.EQUIVALENT, stats={"time": 0.0})
    out_lit = enc.lit(miter_circuit.outputs[0])
    res = solver.solve(assumptions=[out_lit], conflict_limit=conflict_limit)
    stats = {"time": time.perf_counter() - t0}
    if solver.last_unknown:
        return CheckResult(CecVerdict.UNKNOWN, stats=stats)
    if res.satisfiable:
        assert res.model is not None
        cex = {pi: res.model[enc.var_of[pi]] for pi in miter_circuit.inputs}
        return CheckResult(
            CecVerdict.NOT_EQUIVALENT, counterexample=cex, stats=stats
        )
    return CheckResult(CecVerdict.EQUIVALENT, stats=stats)


def check_equivalence_bdd(
    c1: Circuit, c2: Circuit, node_limit: Optional[int] = None
) -> CheckResult:
    """BDD-based equivalence check (for small circuits / cross-checks).

    Inputs are matched by name over the union of both input sets (an input
    swept away on one side is simply irrelevant there); output sets must
    match exactly.  ``node_limit`` caps the manager's live node count; a
    blow-up past it yields UNKNOWN with reason ``"bdd-blowup"`` instead of
    an unbounded build.
    """
    if set(c1.outputs) != set(c2.outputs):
        raise ValueError("circuits must share output names")
    t0 = time.perf_counter()
    manager = BDD(node_limit=node_limit)
    try:
        nodes1 = circuit_bdds(c1, manager)
        nodes2 = circuit_bdds(c2, manager)
        all_inputs = sorted(set(c1.inputs) | set(c2.inputs))
        for out in sorted(set(c1.outputs)):
            if nodes1[out] != nodes2[out]:
                diff = manager.apply_xor(nodes1[out], nodes2[out])
                assignment = manager.pick_minterm(diff) or {}
                cex = {pi: assignment.get(pi, False) for pi in all_inputs}
                return CheckResult(
                    CecVerdict.NOT_EQUIVALENT,
                    counterexample=cex,
                    failing_output=out,
                    stats={"time": time.perf_counter() - t0},
                )
    except BddBlowupError:
        return CheckResult(
            CecVerdict.UNKNOWN,
            reason=REASON_BDD_BLOWUP,
            stats={"time": time.perf_counter() - t0},
        )
    return CheckResult(
        CecVerdict.EQUIVALENT, stats={"time": time.perf_counter() - t0}
    )
