"""Combinational equivalence checking.

The engine follows the filter architecture of the tools the paper cites
(Matsunaga [10]; Kuehlmann & Krohm [12]):

1. **structural hashing** — both circuits are imported into one AIG so that
   shared substructure (the common case after retiming + resynthesis)
   collapses immediately;
2. **random simulation** — candidate internal equivalences are the node
   classes with equal (or complementary) simulation signatures;
3. **SAT sweeping** — candidates are proven/refuted in topological order
   with a CDCL solver; proven merges strengthen later queries;
4. **output check** — each output pair is then checked, yielding either
   EQUIVALENT or a counterexample assignment.

A BDD-based engine (:func:`check_equivalence_bdd`) provides an independent
cross-check for small circuits.

Scaling layers on top of the serial filter pipeline:

* :mod:`repro.cec.partition` — cone-disjoint work units over the miter AIG;
* :mod:`repro.cec.parallel` — a ``multiprocessing`` sweep dispatcher
  (``check_equivalence(..., n_jobs=N)``), verdict-identical to serial;
* :mod:`repro.cec.cache` — a persistent proof cache keyed by canonical
  structural cone hashes, so repeated checks across a flow (or across
  runs) replay proven merges instead of re-solving them;
* :mod:`repro.cec.engines` — the pluggable engine-adapter portfolio:
  each ladder stage (structural, sim, BDD, SAT) is a registered
  :class:`~repro.cec.engines.EngineAdapter`, and third-party engines
  register the same way;
* :mod:`repro.cec.dispatch` — dispatch policies that order the portfolio
  per obligation (``"cascade"`` reproduces the fixed ladder bit for bit;
  ``"heuristic"`` ranks engines from obligation features and a
  persistent :class:`~repro.cec.dispatch.OutcomeStore`).
"""

from repro.cec.cache import ProofCache
from repro.cec.dispatch import (
    CascadePolicy,
    DispatchPolicy,
    HeuristicPolicy,
    OutcomeStore,
    available_policies,
    coerce_policy,
    register_policy,
)
from repro.cec.engine import (
    CecVerdict,
    CheckResult,
    EngineStats,
    check_equivalence,
    check_equivalence_bdd,
    check_miter_unsat,
)
from repro.cec.engines import (
    EngineAdapter,
    EngineContext,
    EngineOutcome,
    Obligation,
    available_engines,
    get_engine,
    register_engine,
    resolve_portfolio,
)
from repro.cec.miter import build_miter
from repro.cec.partition import Candidate, WorkUnit, partition_candidates

__all__ = [
    "Candidate",
    "CascadePolicy",
    "CecVerdict",
    "CheckResult",
    "DispatchPolicy",
    "EngineAdapter",
    "EngineContext",
    "EngineOutcome",
    "EngineStats",
    "HeuristicPolicy",
    "Obligation",
    "OutcomeStore",
    "ProofCache",
    "WorkUnit",
    "available_engines",
    "available_policies",
    "check_equivalence",
    "check_equivalence_bdd",
    "check_miter_unsat",
    "build_miter",
    "coerce_policy",
    "get_engine",
    "partition_candidates",
    "register_engine",
    "register_policy",
    "resolve_portfolio",
]
