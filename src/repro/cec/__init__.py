"""Combinational equivalence checking.

The engine follows the filter architecture of the tools the paper cites
(Matsunaga [10]; Kuehlmann & Krohm [12]):

1. **structural hashing** — both circuits are imported into one AIG so that
   shared substructure (the common case after retiming + resynthesis)
   collapses immediately;
2. **random simulation** — candidate internal equivalences are the node
   classes with equal (or complementary) simulation signatures;
3. **SAT sweeping** — candidates are proven/refuted in topological order
   with a CDCL solver; proven merges strengthen later queries;
4. **output check** — each output pair is then checked, yielding either
   EQUIVALENT or a counterexample assignment.

A BDD-based engine (:func:`check_equivalence_bdd`) provides an independent
cross-check for small circuits.
"""

from repro.cec.engine import (
    CecVerdict,
    CheckResult,
    check_equivalence,
    check_equivalence_bdd,
    check_miter_unsat,
)
from repro.cec.miter import build_miter

__all__ = [
    "CecVerdict",
    "CheckResult",
    "check_equivalence",
    "check_equivalence_bdd",
    "check_miter_unsat",
    "build_miter",
]
