"""Combinational equivalence checking.

The engine follows the filter architecture of the tools the paper cites
(Matsunaga [10]; Kuehlmann & Krohm [12]):

1. **structural hashing** — both circuits are imported into one AIG so that
   shared substructure (the common case after retiming + resynthesis)
   collapses immediately;
2. **random simulation** — candidate internal equivalences are the node
   classes with equal (or complementary) simulation signatures;
3. **SAT sweeping** — candidates are proven/refuted in topological order
   with a CDCL solver; proven merges strengthen later queries;
4. **output check** — each output pair is then checked, yielding either
   EQUIVALENT or a counterexample assignment.

A BDD-based engine (:func:`check_equivalence_bdd`) provides an independent
cross-check for small circuits.

Scaling layers on top of the serial filter pipeline:

* :mod:`repro.cec.partition` — cone-disjoint work units over the miter AIG;
* :mod:`repro.cec.parallel` — a ``multiprocessing`` sweep dispatcher
  (``check_equivalence(..., n_jobs=N)``), verdict-identical to serial;
* :mod:`repro.cec.cache` — a persistent proof cache keyed by canonical
  structural cone hashes, so repeated checks across a flow (or across
  runs) replay proven merges instead of re-solving them.
"""

from repro.cec.cache import ProofCache
from repro.cec.engine import (
    CecVerdict,
    CheckResult,
    EngineStats,
    check_equivalence,
    check_equivalence_bdd,
    check_miter_unsat,
)
from repro.cec.miter import build_miter
from repro.cec.partition import Candidate, WorkUnit, partition_candidates

__all__ = [
    "Candidate",
    "CecVerdict",
    "CheckResult",
    "EngineStats",
    "ProofCache",
    "WorkUnit",
    "check_equivalence",
    "check_equivalence_bdd",
    "check_miter_unsat",
    "build_miter",
    "partition_candidates",
]
