"""Miter construction at the AIG level."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.aig.aig import AIG, aig_from_circuit
from repro.netlist.circuit import Circuit

__all__ = ["build_miter", "MiterAIG"]


class MiterAIG:
    """Both circuits in one shared AIG plus the paired output literals."""

    def __init__(
        self,
        aig: AIG,
        output_pairs: List[Tuple[str, int, int]],
        lits1: Dict[str, int],
        lits2: Dict[str, int],
    ) -> None:
        self.aig = aig
        self.output_pairs = output_pairs  # (name, lit in c1, lit in c2)
        self.lits1 = lits1
        self.lits2 = lits2

    @property
    def trivially_equivalent(self) -> bool:
        """All output pairs collapsed to identical literals structurally."""
        return all(l1 == l2 for _, l1, l2 in self.output_pairs)

    def miter_literal(self) -> int:
        """Single literal that is 1 iff some output pair differs."""
        xors = [self.aig.xor(l1, l2) for _, l1, l2 in self.output_pairs]
        return self.aig.or_all(xors)


def build_miter(c1: Circuit, c2: Circuit) -> MiterAIG:
    """Import both combinational circuits into one AIG, pair the outputs.

    Inputs are matched by name over the *union* of the two input sets: an
    input present on only one side — typically a primary input resynthesis
    swept away as unused — is treated as unconstrained on the side that
    lacks it, which is exactly the semantics of a free PI in the shared
    AIG.  Mismatched *output* sets remain a hard error, since an unpaired
    output has no equivalence question to answer.
    """
    if set(c1.outputs) != set(c2.outputs):
        missing = sorted(set(c1.outputs) ^ set(c2.outputs))
        raise ValueError(f"output sets differ: {missing}")
    aig = AIG()
    aig, lits1 = aig_from_circuit(c1, aig)
    aig, lits2 = aig_from_circuit(c2, aig)
    pairs = [(name, lits1[name], lits2[name]) for name in sorted(set(c1.outputs))]
    return MiterAIG(aig, pairs, lits1, lits2)
