"""Metrics-driven engine dispatch: policies and the recorded-outcome store.

A :class:`DispatchPolicy` turns the engine portfolio (an ordered list of
:class:`~repro.cec.engines.EngineAdapter` objects) into a per-obligation
order, using features the observability layer already exposes — the
pair's fanin-cone size (annotated on every ``cec.obligation`` span and
in the ``--oblog`` feature rows) and, when available, recorded outcomes
of earlier runs.

Two policies ship:

* :class:`CascadePolicy` (``"cascade"``, the default) — the historical
  fixed ladder, verbatim.  Verdicts, counterexamples and the
  ``cec.cascade.*`` metric totals are bit-identical to the pre-adapter
  engine, which is why it stays the default.
* :class:`HeuristicPolicy` (``"heuristic"``) — orders the proving
  engines per obligation: simulation first (refutes for free), then BDD
  before SAT on small cones (a cone that fits the node bound decides in
  microseconds) and SAT before BDD on large ones.  When an
  :class:`OutcomeStore` has enough recorded attempts for *every* engine
  in the pool, the static ranking is replaced by measured seconds per
  decision — so repeated batch runs improve their own dispatch.  It also
  asks the sweep to defer a signature class's remaining queries after
  its first refutation even outside refinement rounds
  (:attr:`DispatchPolicy.sweep_defer`), trading likely-refuted merges
  for saved SAT queries — sound, since the sweep only accelerates.

Every policy records per-engine outcomes into its store (when one is
attached) regardless of which policy ordered the attempt, so a batch run
under the default cascade still trains the heuristic for the next run.
The store also ingests PR 8 ``--oblog`` rows directly
(:meth:`OutcomeStore.ingest_records`).

Only decided-vs-undecided and cost are learned — never verdicts: every
engine is sound, so policy choice can change *whether* a pair is decided
(UNKNOWNs may differ), not which way.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.cec.engines.base import (
    EQ,
    NEQ,
    EngineAdapter,
    EngineContext,
    EngineOutcome,
    Obligation,
)

__all__ = [
    "DispatchPolicy",
    "CascadePolicy",
    "HeuristicPolicy",
    "OutcomeStore",
    "available_policies",
    "coerce_policy",
    "register_policy",
]


class OutcomeStore:
    """Persistent per-engine outcome statistics, bucketed by cone size.

    One JSON file of cells keyed ``"<engine>|b<bucket>"`` where the
    bucket is ``cone.bit_length()`` (powers of two — cone 300 and 500
    share a cell, 300 and 3000 do not).  Each cell accumulates
    ``attempts`` / ``decided`` / ``seconds``; :meth:`expected_cost`
    prices an engine for a cone as mean seconds per *decision*, so an
    engine that burns time without deciding sinks in the ranking.

    Saves are atomic (write-temp + rename) and only happen when dirty,
    mirroring the proof cache's discipline; a missing file is an empty
    store, not an error.
    """

    VERSION = 1

    def __init__(self, path: Union[None, str, os.PathLike] = None) -> None:
        self.path = os.fspath(path) if path is not None else None
        self.cells: Dict[str, Dict[str, float]] = {}
        self.dirty = False
        if self.path is not None and os.path.exists(self.path):
            self._load()

    @classmethod
    def coerce(
        cls, value: Union[None, str, os.PathLike, "OutcomeStore"]
    ) -> Optional["OutcomeStore"]:
        """None passes through; a path opens (or creates) a store."""
        if value is None or isinstance(value, cls):
            return value
        return cls(value)

    @staticmethod
    def bucket(cone: int) -> int:
        """Log2 cone-size bucket the store aggregates outcomes under."""
        return max(0, int(cone)).bit_length()

    @staticmethod
    def _key(engine: str, bucket: int) -> str:
        return f"{engine}|b{bucket}"

    def _load(self) -> None:
        assert self.path is not None
        with open(self.path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict) or "cells" not in data:
            raise ValueError(f"{self.path}: not a dispatch outcome store")
        self.cells = {
            str(key): {
                "attempts": float(cell.get("attempts", 0)),
                "decided": float(cell.get("decided", 0)),
                "seconds": float(cell.get("seconds", 0.0)),
            }
            for key, cell in dict(data["cells"]).items()
        }

    def save(self) -> None:
        """Atomically persist; no-op without a path or unchanged."""
        if self.path is None or not self.dirty:
            return
        payload = {"version": self.VERSION, "cells": self.cells}
        directory = os.path.dirname(self.path) or "."
        fd, tmp = tempfile.mkstemp(prefix=".outcomes-", dir=directory)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.dirty = False

    def record(
        self, engine: str, cone: int, decided: bool, seconds: float
    ) -> None:
        """Fold one engine attempt into its cone-bucket cell."""
        cell = self.cells.setdefault(
            self._key(engine, self.bucket(cone)),
            {"attempts": 0.0, "decided": 0.0, "seconds": 0.0},
        )
        cell["attempts"] += 1.0
        if decided:
            cell["decided"] += 1.0
        cell["seconds"] += max(0.0, float(seconds))
        self.dirty = True

    def attempts(self, engine: str, cone: int) -> int:
        """Recorded attempt count for this engine/cone bucket."""
        cell = self.cells.get(self._key(engine, self.bucket(cone)))
        return int(cell["attempts"]) if cell else 0

    def expected_cost(self, engine: str, cone: int) -> Optional[float]:
        """Mean seconds per decision for this engine/cone bucket.

        None without data.  A cell with zero decisions gets a half-count
        prior so its cost is finite but large — the engine is tried last,
        not banned forever.
        """
        cell = self.cells.get(self._key(engine, self.bucket(cone)))
        if not cell or cell["attempts"] <= 0:
            return None
        attempts = cell["attempts"]
        mean_seconds = cell["seconds"] / attempts
        rate = max(cell["decided"], 0.5) / attempts
        return mean_seconds / rate

    def ingest_records(self, records: Iterable[Any]) -> int:
        """Fold per-obligation rows (PR 8 ``--oblog``) into the store.

        Accepts :class:`repro.obs.oblog.ObligationRecord` objects or
        plain mappings; anything with ``engine`` / ``verdict`` /
        ``cone`` / ``seconds``.  Returns the number of rows ingested.
        """

        def get(rec: Any, key: str, default: Any = None) -> Any:
            if isinstance(rec, Mapping):
                return rec.get(key, default)
            return getattr(rec, key, default)

        count = 0
        for rec in records:
            engine = get(rec, "engine")
            verdict = get(rec, "verdict")
            if not engine or verdict is None:
                continue
            self.record(
                str(engine),
                int(get(rec, "cone", 0) or 0),
                str(verdict) in (EQ, NEQ),
                float(get(rec, "seconds", 0.0) or 0.0),
            )
            count += 1
        return count


class DispatchPolicy:
    """Orders the engine portfolio per obligation; records outcomes.

    Subclass contract: set :attr:`name`, implement
    :meth:`default_portfolio` and (usually) :meth:`order`.
    ``needs_features`` forces the per-obligation cone walk even when
    tracing is off; ``sweep_defer`` asks sweep workers to defer a
    signature class's remaining queries after its first refutation even
    outside refinement rounds (always sound — deferral only loses
    merges).
    """

    name: str = "?"
    needs_features: bool = False
    sweep_defer: bool = False

    def __init__(self, store: Optional[OutcomeStore] = None) -> None:
        self.store = store

    def default_portfolio(self, budgeted: bool) -> Tuple[str, ...]:
        """Engine names to run, in base order, when none were given."""
        raise NotImplementedError

    def order(
        self,
        ob: Obligation,
        adapters: Sequence[EngineAdapter],
        ctx: EngineContext,
    ) -> List[EngineAdapter]:
        """Per-obligation engine order; the base class keeps it as-is."""
        return list(adapters)

    def observe(
        self,
        ob: Obligation,
        engine: str,
        outcome: EngineOutcome,
        seconds: float,
        ctx: EngineContext,
    ) -> None:
        """Record one proving attempt's outcome (store-backed policies)."""
        if self.store is not None:
            self.store.record(
                engine, ob.cone(ctx), outcome.status in (EQ, NEQ), seconds
            )


_POLICIES: Dict[str, Callable[..., DispatchPolicy]] = {}


def register_policy(cls):
    """Register a policy class under its ``name`` (class decorator)."""
    _POLICIES[cls.name] = cls
    return cls


def available_policies() -> List[str]:
    """Sorted names of every registered dispatch policy."""
    return sorted(_POLICIES)


def coerce_policy(
    value: Union[None, str, DispatchPolicy],
    store: Optional[OutcomeStore] = None,
) -> DispatchPolicy:
    """Name or instance → policy instance (None means ``"cascade"``)."""
    if isinstance(value, DispatchPolicy):
        if store is not None and value.store is None:
            value.store = store
        return value
    name = "cascade" if value is None else str(value)
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown dispatch policy {name!r}; available: "
            + ", ".join(available_policies())
        ) from None
    return cls(store=store)


@register_policy
class CascadePolicy(DispatchPolicy):
    """The historical fixed ladder — the bit-identical default.

    Portfolio and order are exactly the pre-adapter engine's: budgeted
    checks walk structural → sim → BDD → SAT; unbudgeted ("classic")
    checks walk structural (cache) → SAT only.
    """

    name = "cascade"

    def default_portfolio(self, budgeted: bool) -> Tuple[str, ...]:
        if budgeted:
            return ("structural", "sim", "bdd", "sat")
        return ("structural", "sat")


@register_policy
class HeuristicPolicy(DispatchPolicy):
    """Feature-ranked dispatch: cheapest-likely-decider first.

    Static ranking (no store data): sim first — a refutation there costs
    nothing; then BDD before SAT when the pair's cone is at most
    :attr:`small_cone` AIG nodes (such cones build well under the node
    bound), SAT before BDD otherwise.  With an attached
    :class:`OutcomeStore` holding at least :attr:`min_attempts` recorded
    attempts for *every* prover in the pool (for the cone's bucket), the
    static ranks are replaced by measured seconds per decision.  The
    all-provers gate keeps a lone well-sampled engine from leapfrogging
    unsampled ones on data it doesn't have.

    Unlike the cascade, the full four-engine pool is used even without a
    budget — that is where the SAT-query savings come from: sim refutes
    NEQ outputs and the BDD proves small EQ cones with zero SAT queries.
    """

    name = "heuristic"
    needs_features = True
    sweep_defer = True
    #: Cone-size threshold (AIG nodes) under which the BDD goes first.
    small_cone = 512
    #: Minimum recorded attempts per engine before store ranks kick in.
    min_attempts = 5

    def default_portfolio(self, budgeted: bool) -> Tuple[str, ...]:
        return ("structural", "sim", "bdd", "sat")

    def _static_rank(self, name: str, cone: int) -> float:
        if name == "sim":
            return 0.0
        if name == "bdd":
            return 1.0 if cone <= self.small_cone else 3.0
        if name == "sat":
            return 2.0
        return 4.0  # unregistered-by-us engines go last, stable order

    def order(
        self,
        ob: Obligation,
        adapters: Sequence[EngineAdapter],
        ctx: EngineContext,
    ) -> List[EngineAdapter]:
        passive = [a for a in adapters if not a.proving]
        provers = [a for a in adapters if a.proving]
        cone = ob.cone(ctx)
        store = self.store
        if store is not None and provers and all(
            store.attempts(a.name, cone) >= self.min_attempts
            for a in provers
        ):
            def rank(a: EngineAdapter) -> Tuple[float, float, str]:
                cost = store.expected_cost(a.name, cone)
                return (
                    cost if cost is not None else float("inf"),
                    self._static_rank(a.name, cone),
                    a.name,
                )
        else:
            def rank(a: EngineAdapter) -> Tuple[float, float, str]:
                return (self._static_rank(a.name, cone), 0.0, a.name)
        return passive + sorted(provers, key=rank)
