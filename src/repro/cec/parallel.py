"""Multiprocessing dispatch for the SAT sweeping work units.

Each work unit ships to a worker process as a self-contained payload: the
parent solver's root-level clause slice for the unit's cone (remapped to a
dense variable space so the worker's CDCL heuristics never touch foreign
variables) plus the candidate queries.  Workers run their own incremental
:class:`~repro.sat.solver.Solver`, prove or refute candidates in
topological order — locally-proven merges strengthen later queries exactly
as in the serial sweep — and return one status per candidate.  The engine
then merges proven equivalences back into the parent solver before the
final output checks.

Dispatch uses a ``fork`` process pool when available (cheap on Linux, and
the payloads are plain tuples either way); any environment that refuses to
spawn processes degrades to in-process execution of the same payloads, so
``n_jobs > 1`` never changes verdicts, only wall time.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cec.partition import WorkUnit
from repro.sat.solver import Solver

__all__ = ["UnitResult", "sweep_units_parallel", "sweep_unit_payload"]

EQ = "eq"
NEQ = "neq"
UNKNOWN = "unknown"

# payload: (num_vars, clauses, queries, conflict_limit)
_Payload = Tuple[int, List[List[int]], List[Tuple[int, int, bool]], Optional[int]]


class UnitResult:
    """Per-unit sweep outcome: one status per candidate plus timings."""

    def __init__(
        self, statuses: List[str], sat_queries: int, seconds: float
    ) -> None:
        self.statuses = statuses
        self.sat_queries = sat_queries
        self.seconds = seconds


def sweep_unit_payload(
    solver: Solver, unit: WorkUnit, conflict_limit: Optional[int]
) -> _Payload:
    """Build one worker payload from the parent solver's clause slice."""
    nodes = sorted(unit.cone)
    var_of: Dict[int, int] = {node + 1: i + 1 for i, node in enumerate(nodes)}
    clauses = [
        [var_of[abs(lit)] * (1 if lit > 0 else -1) for lit in clause]
        for clause in solver.export_clauses(var_of)
    ]
    queries = [
        (var_of[c.rep + 1], var_of[c.node + 1], c.phase_equal)
        for c in unit.candidates
    ]
    return (len(nodes), clauses, queries, conflict_limit)


def _sweep_unit_worker(payload: _Payload) -> Tuple[List[str], int, float]:
    """Run one unit's queries on a fresh solver (executes in a worker)."""
    num_vars, clauses, queries, conflict_limit = payload
    t0 = time.perf_counter()
    solver = Solver()
    solver.ensure_vars(num_vars)
    for clause in clauses:
        if not solver.add_clause(clause):
            raise RuntimeError("inconsistent CNF slice in sweep worker")
    statuses: List[str] = []
    sat_queries = 0
    for a, b_var, phase_equal in queries:
        b = b_var if phase_equal else -b_var
        r1 = solver.solve(assumptions=[a, -b], conflict_limit=conflict_limit)
        sat_queries += 1
        if r1.satisfiable:
            statuses.append(NEQ)
            continue
        if solver.last_unknown:
            statuses.append(UNKNOWN)
            continue
        r2 = solver.solve(assumptions=[-a, b], conflict_limit=conflict_limit)
        sat_queries += 1
        if r2.satisfiable:
            statuses.append(NEQ)
            continue
        if solver.last_unknown:
            statuses.append(UNKNOWN)
            continue
        solver.add_clause([-a, b])
        solver.add_clause([a, -b])
        statuses.append(EQ)
    return statuses, sat_queries, time.perf_counter() - t0


def sweep_units_parallel(
    solver: Solver,
    units: Sequence[WorkUnit],
    conflict_limit: Optional[int],
    n_jobs: int,
) -> List[UnitResult]:
    """Sweep all units on a process pool; results align with ``units``.

    ``ProcessPoolExecutor.map`` preserves input order, so the result list
    is deterministic regardless of worker scheduling.
    """
    payloads = [sweep_unit_payload(solver, u, conflict_limit) for u in units]
    outputs: Optional[List[Tuple[List[str], int, float]]] = None
    if n_jobs > 1 and len(payloads) > 1:
        try:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            with ProcessPoolExecutor(
                max_workers=min(n_jobs, len(payloads)), mp_context=ctx
            ) as pool:
                outputs = list(pool.map(_sweep_unit_worker, payloads))
        except (OSError, PermissionError, ValueError):
            outputs = None  # sandboxed / no process support: degrade below
    if outputs is None:
        outputs = [_sweep_unit_worker(p) for p in payloads]
    return [UnitResult(*out) for out in outputs]
