"""Fault-tolerant multiprocessing dispatch for the SAT sweeping work units.

Each work unit ships to a worker process as a self-contained payload: the
parent solver's root-level clause slice for the unit's cone (remapped to a
dense variable space so the worker's CDCL heuristics never touch foreign
variables) plus the candidate queries.  Workers run their own incremental
:class:`~repro.sat.solver.Solver`, prove or refute candidates in
topological order — locally-proven merges strengthen later queries exactly
as in the serial sweep — and return one status per candidate.  The engine
then merges proven equivalences back into the parent solver before the
final output checks.

Two kinds of solver knowledge cross process boundaries with the unit:

* **Shared learned clauses** — the engine's clause pool (quality-filtered
  learned clauses harvested from earlier rounds' workers) is sliced to
  each unit's variable map and imported into the worker's solver before
  it starts; at exit the worker exports its own short/low-LBD learned
  clauses back (already remapped to the parent's variable space).  A
  unit requeued onto the serial path after a pool fault additionally
  folds in the clauses its surviving siblings exported this round.
  Every clause in the pool is a consequence of clauses every solver
  shares (unit slices are subsets of the parent's clause set, merge
  clauses hold on all circuit-consistent assignments), so sharing can
  never change a verdict.
* **Assumption cores** — known cores (same variable-space discipline)
  seed a per-worker :class:`~repro.sat.cores.CoreIndex`; queries whose
  assumptions a core subsumes are retired without solving, and fresh
  cores ship home for the engine's shared index.

Dispatch is resource-governed and degrades instead of aborting:

* a ``fork`` process pool is used when available; any environment that
  refuses to spawn processes (or a pool that breaks mid-flight) falls back
  to in-process execution of the same payloads;
* every unit gets a wall-clock window (``unit_timeout``); a worker that
  crashes or hangs past it is killed with the pool and its unit is
  *requeued onto the serial path* with bounded retry + backoff;
* a unit that still fails after its retries keeps whatever verdicts its
  attempts decided before dying (each candidate is proven independently,
  so partial statuses are sound) and records UNKNOWN for the rest — the
  sweep is an accelerator: losing part of a unit loses merges, never
  soundness.  Partial ``sat_queries`` and wall time from failed attempts
  are likewise preserved on the :class:`UnitResult` instead of vanishing.

Observability: when the payload requests collection, each worker records
its own metrics (:class:`repro.obs.metrics.MetricsRegistry` — solver
effort histograms) and spans (a buffering
:class:`repro.obs.trace.Tracer` against the parent's epoch) and ships
them back with the unit result; the engine re-parents the spans into the
main trace, so per-worker lanes, hung-worker kills, and serial requeues
all show up in the timeline.

Because of that containment, ``n_jobs > 1`` never changes verdicts versus
the serial sweep, only wall time — even under worker faults.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import random
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cec.partition import WorkUnit
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.runtime import chaos
from repro.runtime.retry import run_with_retries
from repro.sat.cores import CoreIndex, core_retires
from repro.sat.solver import Solver

__all__ = ["UnitResult", "sweep_units_parallel", "sweep_unit_payload"]

EQ = "eq"
NEQ = "neq"
UNKNOWN = "unknown"
#: A query skipped because an earlier query already refuted its signature
#: class this round; the refinement loop re-simulates with the refuting
#: model and re-splits the class, so the pair is re-derived (or proven
#: distinct) from better signatures instead of burning a SAT query now.
DEFERRED = "deferred"

# payload: (num_vars, clauses, queries, conflict_limit, wall_remaining,
#           unit_index, collect, trace_epoch, defer, collect_models,
#           pi_map, engines, shared_clauses, known_cores, global_vars)
# — the first five fields are the original layout; the next three carry
# observability context; the following three carry the refinement
# context (per-group deferral and NEQ-model collection, with ``pi_map``
# mapping the unit's dense solver variables back to global PI node ids
# so models make sense to the parent); ``engines`` names the active
# adapter portfolio (None = unrestricted) so workers honor the dispatch
# selection — a portfolio without ``sat`` makes the whole unit UNKNOWN
# without building a solver.  The final three carry the clause-sharing /
# core context: peer learned clauses and known assumption cores already
# sliced+remapped to the unit's variable space, and ``global_vars``
# (local var ``i+1`` → parent CNF var ``global_vars[i]``) so the worker
# can emit its own learned clauses and cores in the parent's space.
_Payload = Tuple[
    int,
    List[List[int]],
    List[Tuple[int, int, bool, int]],
    Optional[int],
    Optional[float],
    int,
    bool,
    float,
    bool,
    bool,
    List[Tuple[int, int]],
    Optional[Tuple[str, ...]],
    List[List[int]],
    List[List[int]],
    List[int],
]
# (statuses, sat_queries, seconds, obs, models, extras) where obs is
# None or {"metrics": registry.to_dict(), "events": [trace events]},
# models aligns with statuses (a {pi node: value} dict per NEQ when
# collection is on, None otherwise), and extras is None or
# {"learned": [...], "cores": [...], "core_retired": n,
#  "shared_imported": n} with clauses/cores in the parent's variable
# space.
_WorkerOutput = Tuple[
    List[str],
    int,
    float,
    Optional[Dict[str, Any]],
    Optional[List[Optional[Dict[int, bool]]]],
    Optional[Dict[str, Any]],
]

# Legacy test seam: fault-injection hook run at worker entry (both in
# workers and on the in-process path).  ``fork`` children inherit a
# monkeypatched value, so tests can simulate crashing workers
# deterministically.  New code should prefer the shared registry in
# :mod:`repro.runtime.chaos` (the ``worker.entry`` site fires right after
# this hook); the attribute stays for existing monkeypatch users.
_fault_hook: Optional[Callable[[_Payload], None]] = None


class UnitResult:
    """Per-unit sweep outcome: one status per candidate plus timings.

    ``error`` records the final failure of a unit whose worker (and serial
    retries) died — statuses decided before the failure are kept and the
    remainder are UNKNOWN.  ``retries`` counts how many re-attempts the
    dispatcher spent on the unit.  ``events`` / ``metrics`` carry the
    worker-side trace events and metrics snapshot when collection was on.
    ``models`` aligns with ``statuses`` when NEQ-model collection was on:
    the refuting PI assignment (``{pi node id: value}``) per NEQ status,
    None elsewhere — the raw material of the refinement loop.

    ``learned`` / ``cores`` carry the worker's quality-filtered learned
    clauses and the assumption cores it knows at exit, both already in
    the parent's CNF variable space; ``core_retired`` counts queries the
    worker answered from a core without solving, ``shared_imported`` the
    peer clauses it actually installed.
    """

    def __init__(
        self,
        statuses: List[str],
        sat_queries: int,
        seconds: float,
        error: Optional[str] = None,
        retries: int = 0,
        events: Optional[List[Dict[str, Any]]] = None,
        metrics: Optional[Dict[str, Any]] = None,
        models: Optional[List[Optional[Dict[int, bool]]]] = None,
        learned: Optional[List[List[int]]] = None,
        cores: Optional[List[List[int]]] = None,
        core_retired: int = 0,
        shared_imported: int = 0,
    ) -> None:
        self.statuses = statuses
        self.sat_queries = sat_queries
        self.seconds = seconds
        self.error = error
        self.retries = retries
        self.events = events
        self.metrics = metrics
        self.models = models
        self.learned = learned or []
        self.cores = cores or []
        self.core_retired = core_retired
        self.shared_imported = shared_imported

    def model_for(self, index: int) -> Optional[Dict[int, bool]]:
        """The refuting model for candidate ``index``, if one was shipped."""
        if self.models is None or index >= len(self.models):
            return None
        return self.models[index]


def sweep_unit_payload(
    solver: Solver,
    unit: WorkUnit,
    conflict_limit: Optional[int],
    wall_remaining: Optional[float] = None,
    unit_index: int = 0,
    collect: bool = False,
    trace_epoch: float = 0.0,
    defer: bool = False,
    collect_models: bool = False,
    pi_nodes: Optional[Sequence[int]] = None,
    engines: Optional[Sequence[str]] = None,
    shared_clauses: Optional[Sequence[Sequence[int]]] = None,
    known_cores: Optional[Sequence[Sequence[int]]] = None,
) -> _Payload:
    """Build one worker payload from the parent solver's clause slice.

    ``wall_remaining`` is the budget's remaining wall seconds at dispatch
    time; the worker turns it into its own absolute deadline so budgeted
    sweeps stop in-process even when the pool's timeout never fires.
    ``collect`` asks the worker to record its own spans/metrics and ship
    them back; ``trace_epoch`` anchors worker timestamps on the parent's
    timeline (``CLOCK_MONOTONIC`` is system-wide under ``fork``).

    ``defer`` turns on per-group deferral (after one NEQ in a signature
    class, the class's remaining queries come back DEFERRED instead of
    being solved); ``collect_models`` asks for the refuting PI assignment
    of every NEQ, translated back to global node ids via ``pi_nodes``
    (the AIG's PI node list — only PIs inside the unit's cone appear in a
    model, the rest are unconstrained).

    ``engines`` names the active adapter portfolio; workers honor the
    dispatch selection, so a portfolio without the ``sat`` engine turns
    the whole unit into UNKNOWN statuses with zero queries.

    ``shared_clauses`` / ``known_cores`` are the engine's clause pool
    and assumption cores in the *parent's* variable space; only entries
    falling entirely inside the unit's variable map are shipped (a
    clause mentioning a foreign variable is meaningless to the slice),
    remapped to the unit's dense space.
    """
    nodes = sorted(unit.cone)
    var_of: Dict[int, int] = {node + 1: i + 1 for i, node in enumerate(nodes)}

    def remap_all(groups: Optional[Sequence[Sequence[int]]]) -> List[List[int]]:
        # Slice to the unit: keep only literal groups whose variables
        # all live in the unit's map, remapped to local space.
        out: List[List[int]] = []
        for group in groups or ():
            if all(abs(lit) in var_of for lit in group):
                out.append(
                    [var_of[abs(lit)] * (1 if lit > 0 else -1) for lit in group]
                )
        return out

    clauses = [
        [var_of[abs(lit)] * (1 if lit > 0 else -1) for lit in clause]
        for clause in solver.export_clauses(var_of)
    ]
    queries = [
        (var_of[c.rep + 1], var_of[c.node + 1], c.phase_equal, c.group)
        for c in unit.candidates
    ]
    pi_map: List[Tuple[int, int]] = []
    if collect_models and pi_nodes is not None:
        pi_map = [
            (var_of[node + 1], node)
            for node in pi_nodes
            if node + 1 in var_of
        ]
    return (
        len(nodes),
        clauses,
        queries,
        conflict_limit,
        wall_remaining,
        unit_index,
        collect,
        trace_epoch,
        defer,
        collect_models,
        pi_map,
        tuple(engines) if engines is not None else None,
        remap_all(shared_clauses),
        remap_all(known_cores),
        [node + 1 for node in nodes],
    )


def _sweep_unit_worker(
    payload: _Payload, progress: Optional[Dict[str, Any]] = None
) -> _WorkerOutput:
    """Run one unit's queries on a fresh solver (executes in a worker).

    ``progress`` (serial-requeue path only) is updated in place as
    candidates are decided, so a crash mid-unit leaves its partial
    statuses and query count recoverable by the dispatcher.
    """
    (
        num_vars,
        clauses,
        queries,
        conflict_limit,
        wall_remaining,
        unit_index,
        collect,
        trace_epoch,
        defer,
        collect_models,
        pi_map,
        engines,
        shared_clauses,
        known_cores,
        global_vars,
    ) = payload
    if _fault_hook is not None:
        _fault_hook(payload)
    chaos.ensure_env_plan()
    chaos.fire("worker.entry", payload)
    t0 = time.perf_counter()
    deadline = (
        time.monotonic() + wall_remaining if wall_remaining is not None else None
    )
    registry: Optional[MetricsRegistry] = None
    tracer: Optional[Tracer] = None
    span = None
    if collect:
        registry = MetricsRegistry()
        tracer = Tracer(sink=[], epoch=trace_epoch)
        span = tracer.span(
            "sweep.unit", cat="worker", unit=unit_index, candidates=len(queries)
        )
    if engines is not None and "sat" not in engines:
        # The dispatch portfolio excludes the SAT engine; sweeping is
        # SAT work, so the whole unit is UNKNOWN with zero queries and
        # no solver is ever built.
        statuses = [UNKNOWN] * len(queries)
        skipped_models: Optional[List[Optional[Dict[int, bool]]]] = (
            [None] * len(queries) if collect_models else None
        )
        if progress is not None:
            progress["statuses"] = statuses
            progress["models"] = [None] * len(queries)
            progress["sat_queries"] = 0
        obs_out: Optional[Dict[str, Any]] = None
        if registry is not None and tracer is not None and span is not None:
            span.annotate(sat_queries=0, skipped="no-sat-engine")
            span.close()
            obs_out = {"metrics": registry.to_dict(), "events": tracer.events}
        return (
            statuses,
            0,
            time.perf_counter() - t0,
            obs_out,
            skipped_models,
            None,
        )
    solver = Solver()
    if registry is not None:
        solver.metrics = registry
    solver.ensure_vars(num_vars)
    for clause in clauses:
        if not solver.add_clause(clause):
            raise RuntimeError("inconsistent CNF slice in sweep worker")
    shared_imported = solver.import_learned(shared_clauses)
    core_index = CoreIndex()
    core_index.add_many(known_cores)
    core_retired = 0
    statuses: List[str] = []
    models: List[Optional[Dict[int, bool]]] = []
    refuted_groups: set = set()
    sat_queries = 0
    if progress is not None:
        progress["statuses"] = statuses
        progress["models"] = models
        progress["sat_queries"] = 0

    def record_neq(model: Optional[Dict[int, bool]]) -> None:
        statuses.append(NEQ)
        if collect_models and model is not None:
            models.append(
                {node: bool(model.get(var, False)) for var, node in pi_map}
            )
        else:
            models.append(None)

    def query(assumptions: List[int]) -> Tuple[str, Optional[Dict[int, bool]]]:
        # One direction: "unsat" from a subsuming core or the solver,
        # "sat" with the model, "unknown" on a resource limit.
        nonlocal sat_queries, core_retired
        if core_retires(solver, core_index, assumptions):
            core_retired += 1
            return "unsat", None
        res = solver.solve(
            assumptions=assumptions,
            conflict_limit=conflict_limit,
            deadline=deadline,
        )
        sat_queries += 1
        if progress is not None:
            progress["sat_queries"] = sat_queries
        if solver.last_unknown:
            return "unknown", None
        if res.satisfiable:
            return "sat", res.model
        if res.core is not None:
            core_index.add(res.core)
        return "unsat", None

    for a, b_var, phase_equal, group in queries:
        if defer and group in refuted_groups:
            statuses.append(DEFERRED)
            models.append(None)
            continue
        b = b_var if phase_equal else -b_var
        outcome, model = query([a, -b])
        if outcome == "sat":
            record_neq(model)
            refuted_groups.add(group)
            continue
        if outcome == "unknown":
            statuses.append(UNKNOWN)
            models.append(None)
            continue
        outcome, model = query([-a, b])
        if outcome == "sat":
            record_neq(model)
            refuted_groups.add(group)
            continue
        if outcome == "unknown":
            statuses.append(UNKNOWN)
            models.append(None)
            continue
        solver.add_clause([-a, b])
        solver.add_clause([a, -b])
        statuses.append(EQ)
        models.append(None)
    obs: Optional[Dict[str, Any]] = None
    if registry is not None and tracer is not None and span is not None:
        span.annotate(sat_queries=sat_queries, core_retired=core_retired)
        span.close()
        obs = {"metrics": registry.to_dict(), "events": tracer.events}
    out_models = models if collect_models else None

    def unmap(groups: List[List[int]]) -> List[List[int]]:
        # Worker-local literals back to the parent's CNF variables.
        return [
            [
                global_vars[abs(lit) - 1] * (1 if lit > 0 else -1)
                for lit in group
            ]
            for group in groups
        ]

    extras: Dict[str, Any] = {
        "learned": unmap(solver.export_learned()),
        "cores": unmap(core_index.export()),
        "core_retired": core_retired,
        "shared_imported": shared_imported,
    }
    return (
        statuses,
        sat_queries,
        time.perf_counter() - t0,
        obs,
        out_models,
        extras,
    )


def _bump(telemetry: Optional[Dict[str, int]], key: str, by: int = 1) -> None:
    if telemetry is not None:
        telemetry[key] = telemetry.get(key, 0) + by


def _dispatch_pool(
    payloads: Sequence[_Payload],
    outputs: List[Optional[_WorkerOutput]],
    n_jobs: int,
    unit_timeout: Optional[float],
    telemetry: Optional[Dict[str, int]],
) -> List[int]:
    """Run payloads on a process pool; returns the indices left undone.

    All units share one wall-clock window of ``unit_timeout`` seconds
    (they run concurrently, so a unit still pending when the window closes
    has had at least that long).  Crashed units and timed-out units are
    returned for the serial path; a window overrun terminates the pool,
    which is the only reliable way to kill a truly hung worker.
    """
    try:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        pool: multiprocessing.pool.Pool = ctx.Pool(
            processes=min(n_jobs, len(payloads))
        )
    except (OSError, PermissionError, ValueError):
        _bump(telemetry, "pool_failures")
        return list(range(len(payloads)))

    pending: List[int] = []
    saw_timeout = False
    try:
        handles = [
            pool.apply_async(_sweep_unit_worker, (payload,))
            for payload in payloads
        ]
        window_end = (
            time.monotonic() + unit_timeout if unit_timeout is not None else None
        )
        for index, handle in enumerate(handles):
            timeout: Optional[float] = None
            if window_end is not None:
                timeout = max(0.0, window_end - time.monotonic())
            try:
                outputs[index] = handle.get(timeout)
            except multiprocessing.TimeoutError:
                saw_timeout = True
                _bump(telemetry, "worker_timeouts")
                pending.append(index)
            except Exception:
                _bump(telemetry, "worker_failures")
                pending.append(index)
    except Exception:
        # Broken pool (e.g. a worker was SIGKILLed): requeue whatever has
        # no result yet and degrade to the serial path.
        _bump(telemetry, "pool_failures")
        pending = [i for i, out in enumerate(outputs) if out is None]
        saw_timeout = True  # terminate: the pool state is unreliable
    finally:
        if saw_timeout:
            pool.terminate()  # kills hung workers outright
        else:
            pool.close()
        pool.join()
    return pending


def sweep_units_parallel(
    solver: Solver,
    units: Sequence[WorkUnit],
    conflict_limit: Optional[int],
    n_jobs: int,
    wall_remaining: Optional[float] = None,
    unit_timeout: Optional[float] = None,
    attempts: int = 2,
    backoff_seconds: float = 0.05,
    telemetry: Optional[Dict[str, int]] = None,
    collect: bool = False,
    trace_epoch: float = 0.0,
    defer: bool = False,
    collect_models: bool = False,
    pi_nodes: Optional[Sequence[int]] = None,
    engines: Optional[Sequence[str]] = None,
    shared_clauses: Optional[Sequence[Sequence[int]]] = None,
    known_cores: Optional[Sequence[Sequence[int]]] = None,
) -> List[UnitResult]:
    """Sweep all units; results align with ``units``, faults contained.

    The pool path preserves input order (handles are collected in order),
    so the result list is deterministic regardless of worker scheduling.
    Units the pool could not finish — crashed, hung past ``unit_timeout``,
    or with no pool at all — run in-process with ``attempts`` bounded
    retries and linear backoff; a unit that still fails keeps the partial
    statuses/queries/time its attempts managed (UNKNOWN for the rest)
    rather than an exception.  ``telemetry`` (optional dict) accumulates
    ``worker_failures`` / ``worker_timeouts`` / ``worker_retries`` /
    ``units_requeued`` / ``pool_failures`` counters.  ``collect`` turns on
    worker-side span/metric collection (shipped back per unit).
    ``defer`` / ``collect_models`` / ``pi_nodes`` carry the refinement
    context into each payload, and ``engines`` the active adapter
    portfolio (see :func:`sweep_unit_payload`).  ``shared_clauses`` /
    ``known_cores`` (parent variable space) are sliced into every
    payload; units requeued onto the serial path additionally fold in
    the learned clauses their surviving pool siblings exported this
    round, so a respawned unit starts from its peers' knowledge.
    """

    def build_payload(
        index: int, unit: WorkUnit, extra_shared: Sequence[Sequence[int]] = ()
    ) -> _Payload:
        pool = list(shared_clauses or ())
        pool.extend(extra_shared)
        return sweep_unit_payload(
            solver,
            unit,
            conflict_limit,
            wall_remaining,
            unit_index=index,
            collect=collect,
            trace_epoch=trace_epoch,
            defer=defer,
            collect_models=collect_models,
            pi_nodes=pi_nodes,
            engines=engines,
            shared_clauses=pool,
            known_cores=known_cores,
        )

    payloads = [build_payload(i, u) for i, u in enumerate(units)]
    outputs: List[Optional[_WorkerOutput]] = [None] * len(payloads)
    retries = [0] * len(payloads)
    errors: List[Optional[str]] = [None] * len(payloads)
    partial: Dict[
        int,
        Tuple[List[str], int, float, Optional[List[Optional[Dict[int, bool]]]]],
    ] = {}

    # One wall window for the whole sweep (pool phase + serial requeues),
    # anchored at dispatch time so retries cannot stretch the budget.
    serial_deadline = (
        time.monotonic() + wall_remaining if wall_remaining is not None else None
    )

    pending = list(range(len(payloads)))
    if n_jobs > 1 and len(payloads) > 1:
        pending = _dispatch_pool(
            payloads, outputs, n_jobs, unit_timeout, telemetry
        )
        _bump(telemetry, "units_requeued", len(pending))
    if pending and len(pending) < len(payloads):
        # Respawn with peer knowledge: the serial requeue of a lost unit
        # starts from the learned clauses its surviving siblings shipped
        # home this round (deduplicated; the payload build re-slices
        # them to each unit's variable map).
        peer_learned: List[List[int]] = []
        seen_peer: set = set()
        for out in outputs:
            if out is None:
                continue
            extras = out[5] or {}
            for clause in extras.get("learned", ()):
                key = tuple(sorted(clause))
                if key not in seen_peer:
                    seen_peer.add(key)
                    peer_learned.append(list(clause))
        if peer_learned:
            for index in pending:
                payloads[index] = build_payload(
                    index, units[index], extra_shared=peer_learned
                )
    for index in pending:
        payload = payloads[index]
        attempt_states: List[Dict[str, Any]] = []

        def attempt(p: _Payload = payload) -> _WorkerOutput:
            progress: Dict[str, Any] = {
                "statuses": [],
                "models": [],
                "sat_queries": 0,
                "t0": time.perf_counter(),
            }
            attempt_states.append(progress)
            try:
                return _sweep_unit_worker(p, progress)
            finally:
                progress["seconds"] = time.perf_counter() - progress["t0"]

        # Exponential backoff with full jitter, seeded per unit: when a
        # whole pool dies at once the serial requeues of its units must
        # not retry in lockstep, yet every run's schedule is reproducible.
        result, error, n_retries = run_with_retries(
            attempt,
            attempts=attempts,
            backoff_seconds=backoff_seconds,
            deadline=serial_deadline,
            exponential=True,
            rng=random.Random(index + 1),
        )
        retries[index] = n_retries
        _bump(telemetry, "worker_retries", n_retries)
        if result is not None:
            outputs[index] = result
        else:
            _bump(telemetry, "worker_failures")
            errors[index] = repr(error) if error is not None else "unknown"
            # Preserve partial work from the failed attempts: the furthest
            # attempt's statuses (each one independently proven) and the
            # query/time totals across all attempts.
            best = max(
                attempt_states,
                key=lambda state: len(state["statuses"]),
                default=None,
            )
            statuses = best["statuses"] if best is not None else []
            best_models = best["models"] if best is not None else []
            partial[index] = (
                list(statuses),
                sum(state["sat_queries"] for state in attempt_states),
                sum(state.get("seconds", 0.0) for state in attempt_states),
                list(best_models) if collect_models else None,
            )

    results: List[UnitResult] = []
    for index, unit in enumerate(units):
        out = outputs[index]
        if out is None:
            # Lost unit: keep decided prefixes, UNKNOWN for the remainder
            # — sound (losing merges, never verdicts), just slower.
            statuses, sat_queries, seconds, part_models = partial.get(
                index, ([], 0, 0.0, None)
            )
            n = len(unit.candidates)
            statuses = (statuses + [UNKNOWN] * (n - len(statuses)))[:n]
            if part_models is not None:
                part_models = (part_models + [None] * (n - len(part_models)))[
                    :n
                ]
            results.append(
                UnitResult(
                    statuses,
                    sat_queries,
                    seconds,
                    error=errors[index] or "worker lost",
                    retries=retries[index],
                    models=part_models,
                )
            )
        else:
            statuses, sat_queries, seconds, obs, models, extras = out
            extras = extras or {}
            results.append(
                UnitResult(
                    statuses,
                    sat_queries,
                    seconds,
                    retries=retries[index],
                    events=(obs or {}).get("events"),
                    metrics=(obs or {}).get("metrics"),
                    models=models,
                    learned=extras.get("learned"),
                    cores=extras.get("cores"),
                    core_retired=int(extras.get("core_retired", 0)),
                    shared_imported=int(extras.get("shared_imported", 0)),
                )
            )
    return results
