"""Cone-aware partitioning of sweep candidates into parallel work units.

SAT sweeping proves candidate equivalences one signature class at a time,
and each query only ever touches the CNF slice of the candidate pair's
transitive fanin cone.  That makes the sweep embarrassingly parallel as
long as work units are *cone-disjoint*: two classes whose cones share no
AND node constrain disjoint clause sets, so solving them on separate
solvers cannot change any outcome (the hybrid-sweeping parallelisation of
Chen et al., arXiv:2501.14740).

The partitioner therefore:

1. computes the combined fanin cone of every signature class;
2. clusters classes that share AND nodes (union-find), which yields the
   finest cone-disjoint decomposition;
3. greedily bins clusters into ``n_units`` units balanced by cone size
   (the dominant solve-cost proxy).  When the union-find collapses nearly
   everything into one cluster — common for tightly shared miters — the
   oversized cluster is split at class granularity; the resulting units
   overlap in cone nodes (duplicated clauses, never shared queries), which
   costs redundant clause copies but preserves correctness and load
   balance.

Everything is deterministic: classes are processed in their given order,
ties break on the lowest class index, and units list their candidates in
topological (node id) order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.aig.aig import AIG

__all__ = ["Candidate", "WorkUnit", "partition_candidates"]


@dataclass(frozen=True)
class Candidate:
    """One sweep query: prove ``node`` equal (or complementary) to ``rep``.

    ``group`` identifies the signature class the pair came from.  Classes
    are never split across work units, so a sweeper that sees one NEQ in a
    group may defer the group's remaining queries: the refinement loop
    will re-simulate with the refuting model and split the class anyway.
    """

    rep: int
    node: int
    phase_equal: bool
    group: int = 0

    @property
    def rep_lit(self) -> int:
        """The representative's positive literal."""
        return 2 * self.rep

    @property
    def node_lit(self) -> int:
        """The candidate's literal in the phase to prove equal to the rep."""
        return 2 * self.node if self.phase_equal else 2 * self.node + 1


@dataclass
class WorkUnit:
    """A batch of candidates plus the cone (node ids) their CNF lives in."""

    index: int
    candidates: List[Candidate] = field(default_factory=list)
    cone: Set[int] = field(default_factory=set)

    @property
    def cost(self) -> int:
        """Load-balancing proxy: clause volume plus query count."""
        return len(self.cone) + len(self.candidates)


def _find(parent: List[int], i: int) -> int:
    root = i
    while parent[root] != root:
        root = parent[root]
    while parent[i] != root:
        parent[i], i = root, parent[i]
    return root


def partition_candidates(
    aig: AIG,
    class_list: Sequence[Sequence[Candidate]],
    n_units: int,
) -> List[WorkUnit]:
    """Split signature classes into at most ``n_units`` work units.

    ``class_list`` holds one candidate list per signature class.  With
    ``n_units <= 1`` (the serial path) everything lands in one unit and no
    cones are computed — the caller sweeps on its own incremental solver.
    """
    flat = [cand for cls in class_list for cand in cls]
    if n_units <= 1 or len(class_list) <= 1:
        unit = WorkUnit(0, sorted(flat, key=lambda c: (c.node, c.rep)))
        if n_units > 1 and flat:
            unit.cone = aig.cone_nodes(
                lit for c in flat for lit in (c.rep_lit, c.node_lit)
            )
        return [unit] if unit.candidates else []

    cones: List[Set[int]] = []
    for cls in class_list:
        lits = [lit for c in cls for lit in (c.rep_lit, c.node_lit)]
        cones.append(aig.cone_nodes(lits))

    # Union-find over classes; two classes merge when their cones share an
    # AND node.  Shared PIs (free variables) never force a merge.
    parent = list(range(len(class_list)))
    owner: Dict[int, int] = {}
    for idx, cone in enumerate(cones):
        for node in sorted(cone):
            if node == 0 or aig.is_pi_node(node):
                continue
            prev = owner.get(node)
            if prev is None:
                owner[node] = idx
            else:
                ra, rb = _find(parent, prev), _find(parent, idx)
                if ra != rb:
                    parent[max(ra, rb)] = min(ra, rb)

    clusters: Dict[int, List[int]] = {}
    for idx in range(len(class_list)):
        clusters.setdefault(_find(parent, idx), []).append(idx)

    # Pieces to bin: whole clusters, except oversized ones which are split
    # back into their classes (sacrificing disjointness for balance).
    total_cost = sum(len(c) for c in cones) + len(flat)
    fair_share = max(1, (2 * total_cost) // n_units)
    pieces: List[Tuple[int, List[int]]] = []  # (cost, class indices)
    for root in sorted(clusters):
        members = clusters[root]
        cost = sum(len(cones[i]) + len(class_list[i]) for i in members)
        if cost > fair_share and len(members) > 1:
            for i in members:
                pieces.append((len(cones[i]) + len(class_list[i]), [i]))
        else:
            pieces.append((cost, members))

    # Greedy longest-processing-time binning, deterministic tie-breaks.
    pieces.sort(key=lambda p: (-p[0], p[1][0]))
    bins: List[List[int]] = [[] for _ in range(min(n_units, len(pieces)))]
    loads = [0] * len(bins)
    for cost, members in pieces:
        b = loads.index(min(loads))
        bins[b].extend(members)
        loads[b] += cost

    units: List[WorkUnit] = []
    for bin_members in bins:
        if not bin_members:
            continue
        candidates = sorted(
            (cand for i in bin_members for cand in class_list[i]),
            key=lambda c: (c.node, c.rep),
        )
        cone: Set[int] = set()
        for i in bin_members:
            cone |= cones[i]
        units.append(WorkUnit(len(units), candidates, cone))
    return units
