#!/usr/bin/env python3
"""Equivalence notions: exact 3-valued vs conservative simulation (Fig. 1).

The paper's Definition 1 treats power-up values as nondeterministic but
*correlated*: the same latch contributes the same unknown everywhere.  A
conventional 3-valued simulator loses the correlation, so ``q XOR q``
simulates to X although it is always 0.  This example reproduces Fig. 1 and
then shows the CBF machinery proving the pair equivalent.
"""

from repro import check_sequential_equivalence
from repro.bench.counterex import fig1_pair
from repro.sim.exact3 import BOT, exact3_outputs
from repro.sim.logic3 import X, simulate3


def main():
    circuit_a, circuit_b = fig1_pair()
    vec = {"i": False}

    print("Fig. 1(a): o = q XOR q for a power-up-unknown latch q")
    print("Fig. 1(b): o = 0\n")

    a3 = simulate3(circuit_a, [vec])[0]["o"]
    b3 = simulate3(circuit_b, [vec])[0]["o"]
    print(f"conservative 3-valued simulation: (a) o = {a3!r}, (b) o = {b3!r}")
    print("  -> the simulator cannot call them equivalent (X vs False)\n")

    ae = exact3_outputs(circuit_a, [vec])[0]["o"]
    be = exact3_outputs(circuit_b, [vec])[0]["o"]
    print(f"exact 3-valued semantics (Def. 1): (a) o = {ae!r}, (b) o = {be!r}")
    print("  -> both defined 0: the X's are the same latch\n")

    result = check_sequential_equivalence(circuit_a, circuit_b)
    print(f"CBF-based check (Theorem 5.1): {result.verdict.value}")
    assert result.equivalent

    # For contrast: a genuinely undefined value stays ⊥.
    undefined = exact3_outputs(circuit_a, [vec])[0]
    first_cycle_q = exact3_outputs(
        circuit_b, [vec]
    )  # circuit_b has a latch too; its output ignores it
    print("\nA latch output *observed directly* at cycle 0 would be "
          f"{BOT!r} — the semantics only resolves correlated unknowns.")


if __name__ == "__main__":
    main()
