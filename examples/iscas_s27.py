#!/usr/bin/env python3
"""End-to-end tour on a real benchmark: ISCAS'89 s27.

Parses the (public-domain) s27 netlist from its .bench source, runs the
paper's full pipeline — feedback exposure, delay synthesis, min-period
retiming, combinational verification — and produces the two artefact
formats the library supports: a Markdown verification report and, for a
deliberately injected bug, a VCD counterexample waveform.
"""

import tempfile
from pathlib import Path

from repro.bench.mutations import apply_mutation, enumerate_mutations
from repro.core.expose import prepare_circuit
from repro.core.report import render_report
from repro.core.verify import check_sequential_equivalence
from repro.netlist.bench_format import parse_bench
from repro.retime.apply import retime_min_period
from repro.sim.vcd import dump_counterexample
from repro.synth.script import optimize_sequential_delay
from repro.synth.techmap import mapped_stats, tech_map

S27 = """
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
"""


def main():
    circuit = parse_bench(S27)
    circuit.name = "s27"
    print(f"parsed {circuit}")

    # 1. Feedback handling (s27's three latches form FSM loops).
    prepared = prepare_circuit(circuit, use_unateness=False)
    print(f"exposed {prepared.num_exposed} of {circuit.num_latches()} "
          f"latches to break feedback\n")

    # 2. Optimise + retime.
    golden = prepared.circuit
    optimised = optimize_sequential_delay(golden)
    retimed, old_p, new_p = retime_min_period(optimised)
    print(f"clock period {old_p} -> {new_p}")
    for tag, c in [("before", golden), ("after", retimed)]:
        print(f"  {tag}: {mapped_stats(tech_map(c))}")

    # 3. Verify and report.
    result = check_sequential_equivalence(golden, retimed)
    print(f"\nverification: {result.verdict.value} "
          f"in {result.stats['total_time']:.3f}s")
    report = render_report(result, golden, retimed)
    print("\n--- report preview ---")
    print("\n".join(report.splitlines()[:8]))

    # 4. Inject a bug (complement the output inverter) and extract a waveform.
    mutation = next(
        m
        for m in enumerate_mutations(circuit)
        if m.kind == "negation" and m.target == "G17"
    )
    buggy = apply_mutation(circuit, mutation)
    bug_result = check_sequential_equivalence(circuit, buggy)
    print(f"\ninjected fault: {mutation.describe()}")
    print(f"checker verdict: {bug_result.verdict.value}")
    if bug_result.counterexample:
        print("minimised counterexample:")
        for t, vec in enumerate(bug_result.counterexample):
            bits = " ".join(f"{k}={int(v)}" for k, v in sorted(vec.items()))
            print(f"  cycle {t}: {bits}")
        with tempfile.NamedTemporaryFile(
            suffix=".vcd", delete=False
        ) as handle:
            dump_counterexample(
                circuit, buggy, bug_result.counterexample, handle.name
            )
            print(f"waveform written to {handle.name}")


if __name__ == "__main__":
    main()
