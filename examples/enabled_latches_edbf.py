#!/usr/bin/env python3
"""Load-enabled latches and Event-Driven Boolean Functions (Sec. 4.2/5.2).

Reproduces the paper's Fig. 5 derivation (Eq. 1), verifies a class-aware
retiming of an enabled-latch pipeline via EDBFs (Theorem 5.2), and shows
the method's documented conservatism on the Fig. 10/11 pairs.
"""

from repro import CircuitBuilder, check_sequential_equivalence
from repro.bench.counterex import fig10_pair, fig11_pair
from repro.bench.pipeline import pipeline_circuit
from repro.core.edbf import compute_edbf
from repro.retime.incremental import incremental_retime_enabled
from repro.synth import optimize_sequential_delay


def fig5():
    b = CircuitBuilder("fig5")
    u, v, e1, e2, e3 = b.inputs("u", "v", "e1", "e2", "e3")
    w = b.latch(u, enable=e1, name="L1")
    y = b.latch(w, enable=e2, name="L2")
    x = b.latch(v, enable=e3, name="L3")
    b.output(b.AND(y, x), name="z")
    return b.circuit


def main():
    # ------------------------------------------------------------------
    print("== Fig. 5: EDBF of a two-chain enabled circuit ==")
    circuit = fig5()
    edbf = compute_edbf(circuit)
    ctx = edbf.context
    print("z depends on these (input, event) variables:")
    for tag, name, event in sorted(edbf.variables(), key=repr):
        print(f"  {name} at η{ctx.describe(event)}")
    print("matching the paper's Eq. 1: z = u(η[e1,e2]) · v(η[e3])\n")

    # ------------------------------------------------------------------
    print("== Theorem 5.2: retime+resynthesise an enabled pipeline ==")
    pipe = pipeline_circuit(stages=2, width=3, seed=7, enable=True)
    optimised = optimize_sequential_delay(pipe)
    retimed, old_p, new_p = incremental_retime_enabled(optimised)
    print(f"period {old_p} -> {new_p} with class-aware moves "
          f"(latches: {pipe.num_latches()} -> {retimed.num_latches()})")
    result = check_sequential_equivalence(pipe, retimed)
    print(f"EDBF verification: {result.verdict.value} "
          f"({result.stats['events']:.0f} events)\n")
    assert result.equivalent

    # ------------------------------------------------------------------
    print("== the method's conservatism (Figs. 10 and 11) ==")
    c10a, c10b = fig10_pair()
    r_plain = check_sequential_equivalence(c10a, c10b)
    r_rewrite = check_sequential_equivalence(c10a, c10b, event_rewrite=True)
    print(f"Fig. 10 pair: default = {r_plain.verdict.value}, "
          f"with Eq. 5 rewrite = {r_rewrite.verdict.value}")
    print("  (the rewrite assumes transparent enables; see EXPERIMENTS.md)")

    c11a, c11b = fig11_pair()
    r11 = check_sequential_equivalence(c11a, c11b, event_rewrite=True)
    print(f"Fig. 11 pair: {r11.verdict.value} — enable/data interaction "
          f"is beyond the rewrite, exactly as the paper reports")


if __name__ == "__main__":
    main()
