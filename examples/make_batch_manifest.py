"""Generate a batch-verification workload: BLIF pairs + manifest.json.

Builds a directory of circuit pairs exercising every verdict the batch
service can produce, then writes the ``repro batch`` manifest that ties
them together:

* per seed, a pipeline *golden* plus two independently derived revisions
  — min-period retimed, and retimed-then-resynthesised — both
  sequentially equivalent by construction (the paper's Fig. 19 loop);
* one byte-identical pair (dedup/fast-path coverage);
* mutated revisions with an injected fault (a live gate negated) —
  provably **not** equivalent, so the batch exercises counterexample
  extraction and the exit-1 lane.

Usage::

    python examples/make_batch_manifest.py OUTDIR [--seeds N] [--mutants N]
    python -m repro batch OUTDIR/manifest.json --jobs 4 \
        --cache OUTDIR/cache.json --store OUTDIR/results.jsonl

The default workload is 11 pairs — big enough that lane sharding, the
shared proof cache and store resume are all observable, small enough to
finish in seconds.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.mutations import apply_mutation, enumerate_mutations
from repro.bench.pipeline import pipeline_circuit
from repro.netlist.blif import write_blif
from repro.retime.apply import retime_min_period
from repro.synth.script import optimize_sequential_delay


def build_workload(
    out_dir: Path, seeds: int = 4, mutants: int = 2, stages: int = 2, width: int = 3
) -> Path:
    """Write the BLIF files and manifest; returns the manifest path."""
    out_dir.mkdir(parents=True, exist_ok=True)
    rows = []

    def emit(circuit, stem: str) -> str:
        path = out_dir / f"{stem}.blif"
        path.write_text(write_blif(circuit))
        return path.name

    for seed in range(1, seeds + 1):
        golden = pipeline_circuit(
            stages=stages, width=width, seed=seed, name=f"g{seed}"
        )
        golden_file = emit(golden, f"golden_{seed}")
        retimed, _, _ = retime_min_period(golden)
        retimed.name = f"ret{seed}"
        rows.append(
            {
                "golden": golden_file,
                "revised": emit(retimed, f"retimed_{seed}"),
                "name": f"retimed-{seed}",
            }
        )
        resynth = optimize_sequential_delay(retimed, "medium", name=f"syn{seed}")
        rows.append(
            {
                "golden": golden_file,
                "revised": emit(resynth, f"resynth_{seed}"),
                "name": f"resynth-{seed}",
                "priority": 1,  # the harder pairs schedule first
            }
        )

    # Identical pair: exercises the structural fast path and dedup-adjacent
    # fingerprinting (same bytes under two file names).
    identical = pipeline_circuit(stages=stages, width=width, seed=1, name="g1")
    rows.append(
        {
            "golden": emit(identical, "identical_a"),
            "revised": emit(identical, "identical_b"),
            "name": "identical",
        }
    )

    # Refutable pairs: inject a fault into a live gate.
    base = pipeline_circuit(stages=stages, width=width, seed=1, name="g1")
    negations = [m for m in enumerate_mutations(base) if m.kind == "negation"]
    for index, mutation in enumerate(negations[: max(0, mutants)]):
        mutated = apply_mutation(base, mutation)
        rows.append(
            {
                "golden": "golden_1.blif",
                "revised": emit(mutated, f"mutant_{index}"),
                "name": f"mutant-{index}",
            }
        )

    manifest = out_dir / "manifest.json"
    manifest.write_text(
        json.dumps({"version": 1, "jobs": rows}, indent=2) + "\n"
    )
    return manifest


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("out_dir", type=Path, help="directory to populate")
    parser.add_argument("--seeds", type=int, default=4)
    parser.add_argument("--mutants", type=int, default=2)
    parser.add_argument("--stages", type=int, default=2)
    parser.add_argument("--width", type=int, default=3)
    args = parser.parse_args(argv)
    manifest = build_workload(
        args.out_dir, args.seeds, args.mutants, args.stages, args.width
    )
    rows = json.loads(manifest.read_text())["jobs"]
    print(f"wrote {manifest} ({len(rows)} pairs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
