#!/usr/bin/env python3
"""Feedback handling: unate remodelling and latch exposure (paper Sec. 6-7).

The minmax benchmark family has two kinds of latches: an acyclic input
register, and MIN/MAX registers with compare-and-select feedback loops.
This example shows the paper's two tools on it:

* the structural analysis finds the minimal latch set to *expose* (the
  minimum feedback vertex set heuristic, Fig. 15);
* latches whose next-state function is positive unate in their own output
  are instead *remodelled* as load-enabled latches (Lemma 6.1, Figs 12-13)
  — demonstrated on a conditional-update register (Fig. 14).

After either treatment the circuit is acyclic and the CBF/EDBF machinery
applies.
"""

from repro import CircuitBuilder
from repro.bench.counterex import fig14_conditional_update
from repro.bench.minmax import minmax_circuit
from repro.core.expose import choose_latches_to_expose, prepare_circuit
from repro.core.feedback import analyze_feedback_latch
from repro.netlist.graph import feedback_latches, latch_sccs


def main():
    # ------------------------------------------------------------------
    print("== minmax12: structural exposure ==")
    circuit = minmax_circuit(12)
    fb = feedback_latches(circuit)
    print(f"latches: {circuit.num_latches()}, on feedback paths: {len(fb)}")
    print(f"latch-level SCCs: {len(latch_sccs(circuit))}")

    exposed, remodelled = choose_latches_to_expose(circuit, use_unateness=False)
    pct = 100 * len(exposed) / circuit.num_latches()
    print(f"exposed (structural only): {len(exposed)} ({pct:.0f}%) — the "
          f"paper reports 66% for this family")

    prepared = prepare_circuit(circuit, use_unateness=False)
    assert not feedback_latches(prepared.circuit)
    print(f"after exposure the circuit is acyclic: "
          f"{prepared.circuit.num_latches()} movable latches remain\n")

    # ------------------------------------------------------------------
    print("== conditional-update register (Fig. 14): unate remodelling ==")
    cond = fig14_conditional_update(width=4)
    print(f"latches: {cond.num_latches()}, all with MUX feedback loops")
    for latch in sorted(cond.latches)[:1]:
        analysis = analyze_feedback_latch(cond, latch)
        print(f"  {latch}: positive unate = {analysis.positive_unate}, "
              f"disjoint-support decomposition = {analysis.canonical}")
        mgr = analysis.manager
        print(f"  enable support: {sorted(mgr.support(analysis.enable_bdd))}, "
              f"data support: {sorted(mgr.support(analysis.data_bdd))}")

    prepared = prepare_circuit(cond, use_unateness=True)
    print(f"remodelled as load-enabled latches: {prepared.remodelled}")
    print(f"exposed: {len(prepared.exposed)} (none needed — no optimisation "
          f"penalty, unlike exposure)")
    assert not feedback_latches(prepared.circuit)

    # The same circuit under structural-only analysis must expose instead:
    prepared2 = prepare_circuit(cond, use_unateness=False)
    print(f"structural-only would expose {len(prepared2.exposed)} latches — "
          f"the functional analysis the paper recommends saves all of them")


if __name__ == "__main__":
    main()
