#!/usr/bin/env python3
"""Quickstart: build a sequential circuit, retime it, verify combinationally.

This walks the paper's headline loop on a toy pipeline:

1. build a circuit with the :class:`~repro.netlist.build.CircuitBuilder`;
2. optimise it with the SIS-style delay script;
3. retime it to the minimum clock period;
4. prove sequential equivalence via the CBF reduction (Theorem 5.1) — a
   purely combinational check.
"""

from repro import CircuitBuilder, check_sequential_equivalence
from repro.retime import retime_min_period
from repro.synth import optimize_sequential_delay
from repro.synth.techmap import mapped_stats, tech_map


def build_pipeline():
    """A 4-bit two-stage datapath with an input register wall."""
    b = CircuitBuilder("demo")
    ins = b.input_bus("in", 4)
    regs = [b.latch(x) for x in ins]
    # Stage 1: some arithmetic-ish logic.
    s1 = b.XOR(regs[0], regs[1])
    s2 = b.AND(regs[2], regs[3])
    s3 = b.OR(s1, s2)
    s4 = b.XOR(s3, regs[0])
    s5 = b.AND(s4, regs[2])
    out = b.latch(s5)
    b.output(out, name="result")
    return b.circuit


def main():
    original = build_pipeline()
    print(f"original: {original}")

    optimised = optimize_sequential_delay(original)
    retimed, old_period, new_period = retime_min_period(optimised)
    retimed = optimize_sequential_delay(retimed)
    print(f"clock period: {old_period} -> {new_period} (unit gate delays)")

    for name, circuit in [("original", original), ("retimed", retimed)]:
        stats = mapped_stats(tech_map(circuit))
        print(f"{name:>9}: {stats}")

    result = check_sequential_equivalence(original, retimed)
    print(f"verification: {result.verdict.value} via {result.method.upper()} "
          f"in {result.stats['total_time']:.3f}s")
    assert result.equivalent
    print("the retimed circuit is sequentially equivalent — QED")


if __name__ == "__main__":
    main()
