#!/usr/bin/env python3
"""The full Fig. 19 experiment on one benchmark circuit.

Runs every arm of the paper's evaluation pipeline on minmax10 and prints a
one-row Table 1: exposure percentage, latch/area/delay of the retimed (C),
combinational-only (D) and min-area (E) variants, and the H-vs-J
combinational verification time.
"""

from repro.bench.minmax import minmax_circuit
from repro.flows.flow import run_flow
from repro.flows.table1 import format_table1


def main():
    circuit = minmax_circuit(10)
    print(f"running the Fig. 19 flow on {circuit} ...\n")
    result = run_flow(circuit)

    print(format_table1([result]))
    print()
    print(f"notes: {result.notes or '(none)'}")
    print(f"verification verdict: {result.verify_verdict.value} in "
          f"{result.verify_seconds:.2f}s")
    print()
    print("reading the row (paper Sec. 8.1):")
    c_delay, d_delay = result.delay["C"], result.delay["D"]
    print(f"  - C's delay {c_delay} vs D's {d_delay}: retiming+synthesis "
          f"{'beats' if c_delay < d_delay else 'matches'} combinational-only")
    e_l, d_l = result.latches.get("E"), result.latches.get("D")
    print(f"  - E holds the delay of D with {e_l} latches vs D's {d_l}")
    print(f"  - {result.pct_exposed:.0f}% of latches were exposed "
          f"(paper: 66% for minmax)")


if __name__ == "__main__":
    main()
